package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// This file is the record-side differential suite: the fused column recording
// path (RecordColumns staging + chunkEncoder.encodeCols + the encode-ahead
// pipeline) must be byte-identical to the scalar reference path
// (Record staging + chunkEncoder.encode), end to end — same chunks in the
// Recorder, same frames in the trace file.

// colsOf stages recs into a fresh column stage, as a fused producer would.
func colsOf(recs []Record, firstSeq int64) *RecordColumns {
	st := newRecordColumns(len(recs))
	st.FirstSeq = firstSeq
	for i := range recs {
		st.appendRecord(&recs[i])
	}
	return st
}

// widthStreams builds record streams engineered to drive each speculative
// column-width path of appendCol: all-one-byte varints, exact two-byte
// varints, and irregular mixes.
func widthStreams() map[string][]Record {
	mk := func(n int, f func(i int64, r *Record)) []Record {
		recs := make([]Record, n)
		for i := range recs {
			r := synthRecord(int64(i))
			f(int64(i), &r)
			recs[i] = r
		}
		return recs
	}
	return map[string][]Record{
		// Constant fields: every delta zero, every column one-byte uniform.
		"uniform1": mk(300, func(i int64, r *Record) {
			r.Addr, r.Value, r.MemAddr, r.Phase, r.Seq = 7, 3, 9, 1, i
		}),
		// Deltas of ±100 zigzag to 199/200 — in [0x80, 0x4000), exactly two
		// canonical bytes each, driving the uniform two-byte emitter.
		"uniform2": mk(300, func(i int64, r *Record) {
			r.Addr = 100 * i
			r.Value = 100 + i%64
			r.MemAddr = -100 * i
			r.Phase = int(100 * i)
			r.Seq = i
		}),
		// A one-byte delta spliced into a two-byte run: sums to an ambiguous
		// length only the element-wise validation rejects, forcing the generic
		// encoder (and generic decode) without changing the payload length
		// class.
		"mixed": mk(257, func(i int64, r *Record) {
			r.Addr = 100 * i
			if i == 128 {
				r.Addr = 100*i - 99 // one small delta mid-run
			}
			r.Value = i * i * 31
			r.MemAddr = i << uint(i%5)
			r.Seq = i
		}),
		// Large magnitudes: multi-byte varints throughout.
		"wide": mk(100, func(i int64, r *Record) {
			r.Addr = i * (1 << 40)
			r.Value = (i - 50) * (1 << 50)
			r.MemAddr = i * (1 << 33)
			r.Seq = i
		}),
	}
}

// TestEncodeColsMatchesEncode pins the codec twin-path contract: encoding a
// staged column chunk must produce byte-for-byte the same output as encoding
// the equivalent Record slice, for every column-width speculation path and
// for random streams.
func TestEncodeColsMatchesEncode(t *testing.T) {
	streams := widthStreams()
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 100, recorderChunkSize} {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randomRecord(rng, int64(i))
			if rng.Intn(4) == 0 {
				recs[i].Seq = rng.Int63() - rng.Int63()
			}
		}
		streams["random"+string(rune('a'+len(streams)))] = recs
	}
	for name, recs := range streams {
		for _, withSeq := range []bool{true, false} {
			var scalarEnc, colEnc chunkEncoder
			want := scalarEnc.encode(nil, recs, 0, withSeq)
			got := colEnc.encodeCols(nil, colsOf(recs, 0), withSeq)
			if !bytes.Equal(want, got) {
				t.Errorf("%s withSeq=%v: encodeCols differs from encode (%d vs %d bytes)",
					name, withSeq, len(got), len(want))
			}
		}
	}
}

// chunkBytes seals rc and collects every encoded chunk (copied, since walk
// buffers are recycled).
func chunkBytes(t *testing.T, rc *Recorder) [][]byte {
	t.Helper()
	rc.Seal()
	var chunks [][]byte
	rc.walkChunks(func(data []byte, n int, firstSeq int64) {
		chunks = append(chunks, append([]byte(nil), data...))
	})
	return chunks
}

// TestFusedRecorderMatchesScalarRecord records one stream through the default
// column path and the scalar-record reference path and requires the encoded
// chunks to be byte-identical, resident and fully spilled.
func TestFusedRecorderMatchesScalarRecord(t *testing.T) {
	const n = 2*recorderChunkSize + 345
	rng := rand.New(rand.NewSource(21))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = randomRecord(rng, int64(i))
	}
	record := func(scalar bool, budget int64) *Recorder {
		rc := NewRecorder()
		rc.SetScalarRecord(scalar)
		rc.SetMemBudget(budget)
		for i := range recs {
			rc.Consume(&recs[i])
		}
		t.Cleanup(func() { rc.Close() })
		return rc
	}
	for _, budget := range []int64{0, 1} {
		fused, scalar := record(false, budget), record(true, budget)
		var fusedR capture
		fused.Replay(&fusedR) // pre-seal replay: tail materialization path
		if len(fusedR.recs) != n {
			t.Fatalf("budget %d: pre-seal fused replay returned %d records, want %d", budget, len(fusedR.recs), n)
		}
		got, want := chunkBytes(t, fused), chunkBytes(t, scalar)
		if len(got) != len(want) {
			t.Fatalf("budget %d: fused wrote %d chunks, scalar %d", budget, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("budget %d: chunk %d differs between fused and scalar-record", budget, i)
			}
		}
		if budget > 0 && fused.SpilledChunks() == 0 {
			t.Fatalf("budget %d: nothing spilled (spill path not exercised)", budget)
		}
		var scalarR capture
		scalar.Replay(&scalarR)
		if !reflect.DeepEqual(fusedR.recs, scalarR.recs) {
			t.Fatalf("budget %d: fused replay differs from scalar-record replay", budget)
		}
	}
}

// TestColumnSinkMatchesScalarDelivery checks the ColumnSink adapter: a scalar
// record stream pushed through a sink must deliver the same records (as
// batches) that direct per-record consumption observes, including the
// partial-tail flush.
func TestColumnSinkMatchesScalarDelivery(t *testing.T) {
	const n = recorderChunkSize + 99
	var want capture
	var got batchCapture
	sink := NewColumnSink(&got)
	for i := int64(0); i < n; i++ {
		r := synthRecord(i)
		r.Seq = i
		want.Consume(&r)
		sink.Consume(&r)
	}
	sink.Close()
	if !reflect.DeepEqual(want.recs, got.recs) {
		t.Fatal("ColumnSink delivery differs from direct scalar consumption")
	}
}

// TestEncodeAheadPipelineMatchesSequential forces the encode-ahead pipeline on
// (GOMAXPROCS > 1) and requires its chunks to be byte-identical to the
// sequential inline encoder's, in order, with the observability counters
// consistent.
func TestEncodeAheadPipelineMatchesSequential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 5*recorderChunkSize + 77
	rng := rand.New(rand.NewSource(31))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = randomRecord(rng, int64(i))
	}
	piped := NewRecorder()
	for i := range recs {
		piped.Consume(&recs[i])
	}
	if piped.ahead == nil {
		t.Fatal("encode-ahead pipeline did not start at GOMAXPROCS=4")
	}
	// Pre-seal accessors must observe drained, ordered state.
	piped.drainEncode()
	if got := piped.ChunksEncoded(); got != 5 {
		t.Fatalf("ChunksEncoded after drain = %d, want 5", got)
	}
	if piped.EncodeTime() <= 0 {
		t.Error("EncodeTime = 0 after five encoded chunks")
	}
	if piped.EncodeStalls() < 0 {
		t.Error("negative stall count")
	}

	seq := NewRecorder()
	seq.aheadOff = true // sequential fallback, same machine
	for i := range recs {
		seq.Consume(&recs[i])
	}
	got, want := chunkBytes(t, piped), chunkBytes(t, seq)
	if len(got) != len(want) {
		t.Fatalf("pipelined wrote %d chunks, sequential %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("chunk %d differs between pipelined and sequential encode", i)
		}
	}
}

// writeFile writes recs through w-building fn and returns the file bytes.
func writeFile(t *testing.T, format Format, fill func(tw *Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewWriterFormat(&buf, format)
	if err != nil {
		t.Fatal(err)
	}
	fill(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriterProducerPathsMatch drives the trace-file Writer through its three
// producer paths — scalar Consume, batch ConsumeBatch (replay), and fused
// column staging (live VM) — and requires byte-identical files.
func TestWriterProducerPathsMatch(t *testing.T) {
	const n = 2*fileChunkSize + 333
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = synthRecord(int64(i))
		recs[i].Phase = int(uint16(recs[i].Phase)) // v1-representable
	}
	rc := NewRecorder()
	for i := range recs {
		rc.Consume(&recs[i])
	}
	rc.Seal()
	defer rc.Close()

	for _, format := range []Format{FormatV1, FormatV2} {
		scalar := writeFile(t, format, func(tw *Writer) {
			for i := range recs {
				tw.Consume(&recs[i])
			}
		})
		batch := writeFile(t, format, func(tw *Writer) { rc.Replay(tw) })
		if !bytes.Equal(scalar, batch) {
			t.Errorf("%v: batch-replay file differs from scalar-consume file", format)
		}
		if format != FormatV2 {
			continue
		}
		fused := writeFile(t, format, func(tw *Writer) {
			st := tw.ColumnStage()
			if st == nil {
				t.Fatal("v2 writer returned nil ColumnStage")
			}
			for i := range recs {
				if st.N == st.Cap() {
					st = tw.FlushColumns()
				}
				st.appendRecord(&recs[i])
			}
			tw.FlushTail()
		})
		if !bytes.Equal(scalar, fused) {
			t.Error("v2: fused column-staged file differs from scalar-consume file")
		}
	}

	// v1 writers must refuse the column fast path (records go through the
	// scalar reference loop).
	var buf bytes.Buffer
	tw, err := NewWriterFormat(&buf, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	if tw.ColumnStage() != nil {
		t.Error("v1 writer offered a column stage")
	}
	tw.Close()
}

// FuzzColumnEncodeRoundTrip drives arbitrary integer columns through the
// speculative uniform-width encode path (appendDeltaCol/appendRawCol) and the
// matching speculative decoders, checking the round trip is the identity and
// the encoding matches the scalar varint reference byte for byte.
func FuzzColumnEncodeRoundTrip(f *testing.F) {
	f.Add(int64(0), uint16(1), int64(1), false)
	f.Add(int64(5), uint16(300), int64(100), true)
	f.Add(int64(-3), uint16(2000), int64(1<<40), true)
	f.Fuzz(func(t *testing.T, seed int64, count uint16, scale int64, delta bool) {
		n := int(count%4096) + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, n)
		if scale == 0 {
			scale = 1
		}
		for i := range vals {
			switch rng.Intn(3) {
			case 0:
				vals[i] = rng.Int63n(64) - 32 // one-byte zigzag territory
			case 1:
				v := 64 + rng.Int63n(8128) // two-byte zigzag territory
				if rng.Intn(2) == 0 {
					v = -v
				}
				vals[i] = v
			default:
				vals[i] = rng.Int63()%scale - rng.Int63()%scale
			}
		}
		// Reference: scalar canonical zigzag varints with the same
		// delta/raw transform the column encoder applies.
		var ref []byte
		var prev int64
		for _, v := range vals {
			z := v
			if delta {
				z = v - prev
				prev = v
			}
			ref = appendZigzag(ref, z)
		}

		var enc chunkEncoder
		zz := make([]uint64, n)
		var got []byte
		if delta {
			got = enc.appendDeltaCol(nil, vals, zz)
		} else {
			got = enc.appendRawCol(nil, vals, zz)
		}
		// The column is emitted length-prefixed; strip the prefix to compare
		// against the bare reference bytes.
		l64, hdr := uvarint(t, got)
		body := got[hdr:]
		if int(l64) != len(body) {
			t.Fatalf("column length prefix %d, body %d bytes", l64, len(body))
		}
		if !bytes.Equal(body, ref) {
			t.Fatalf("speculative column encode differs from scalar varint reference")
		}

		out := make([]int64, n)
		if err := decodeVarintCol(body, out, delta); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(out, vals) {
			t.Fatal("column round trip differs")
		}
	})
}

// uvarint decodes one uvarint prefix or fails the test.
func uvarint(t *testing.T, b []byte) (uint64, int) {
	t.Helper()
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	t.Fatal("truncated uvarint")
	return 0, 0
}
