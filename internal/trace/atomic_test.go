package trace

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCreateFileRoundTrip: records stream through the atomic writer, the
// final file reads back identically, and no temp debris remains.
func TestCreateFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.vptrace")
	recs := synthStream(0, fileChunkSize+17)

	fw, err := CreateFile(path, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		fw.Consume(&recs[i])
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch:\ngot  %+v\nwant %+v", i, got[i], recs[i])
		}
	}
	assertNoTmpFiles(t, dir)
}

// TestCreateFileAbortLeavesNothing: Abort (the crash-adjacent exit path)
// discards the temp file and never creates the destination.
func TestCreateFileAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.vptrace")
	fw, err := CreateFile(path, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	recs := synthStream(0, 10)
	for i := range recs {
		fw.Consume(&recs[i])
	}
	fw.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after Abort (err=%v)", err)
	}
	assertNoTmpFiles(t, dir)
}

// TestCreateFileNeverTornOnOverwrite: overwriting an existing trace is
// atomic — until Close succeeds, the old complete file is what a reader
// opens.
func TestCreateFileNeverTornOnOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.vptrace")

	write := func(n int64) {
		fw, err := CreateFile(path, FormatV2)
		if err != nil {
			t.Fatal(err)
		}
		recs := synthStream(0, n)
		for i := range recs {
			fw.Consume(&recs[i])
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write(5)

	// Open a second writer and fill it, but do not Close: the published
	// file must still be the 5-record original.
	fw, err := CreateFile(path, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	recs := synthStream(0, 100)
	for i := range recs {
		fw.Consume(&recs[i])
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	f.Close()
	if err != nil || len(got) != 5 {
		t.Fatalf("mid-write read: %d records, err=%v; want the intact 5-record original", len(got), err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoTmpFiles(t, dir)
}

func assertNoTmpFiles(t *testing.T, dir string) {
	t.Helper()
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}
