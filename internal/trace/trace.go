// Package trace defines the dynamic instruction stream the simulator emits
// and the analysis tools consume. It plays the role the SHADE tracing
// environment played in the paper: the functional simulator produces one
// Record per retired instruction and fans it out to any number of consumers
// (profiler, prediction simulators, ILP machine).
package trace

import "repro/internal/isa"

// Record describes one retired dynamic instruction.
type Record struct {
	// Addr is the static instruction address (text-segment index); the
	// predictors index their tables with it.
	Addr int64
	// Op is the executed opcode.
	Op isa.Opcode
	// Dir is the directive carried by the static instruction.
	Dir isa.Directive
	// HasDest reports whether the instruction wrote a computed value to a
	// destination register (the only instructions the paper's mechanisms
	// consider). Writes to the hard-wired zero register report false.
	HasDest bool
	// DestFP reports whether the destination is a floating-point
	// register.
	DestFP bool
	// Dest is the destination register number (valid when HasDest).
	Dest isa.Reg
	// Value is the produced destination value: the integer result, or the
	// IEEE-754 bit pattern for FP destinations (valid when HasDest).
	Value isa.Word
	// Phase is the current execution phase, advanced by PHASE
	// instructions; the FP workloads use phase 0 for initialization and
	// phase 1 for computation (Table 2.1 reports them separately).
	Phase int
	// Seq is the dynamic instruction sequence number (0-based).
	Seq int64
	// Reads lists the register operands the instruction consumed, for
	// dataflow scheduling. Unused entries have Valid=false.
	Reads [2]RegRead
	// Taken reports whether a branch was taken (meaningful for branches).
	Taken bool
	// HasMem reports whether the instruction accessed data memory; for
	// those, MemAddr is the accessed word address. The ILP machine uses
	// store→load pairs as true data dependencies.
	HasMem  bool
	MemAddr int64
}

// RegRead identifies one register source operand.
type RegRead struct {
	Valid bool
	FP    bool
	Reg   isa.Reg
}

// Consumer receives the dynamic instruction stream in program order.
type Consumer interface {
	// Consume is called once per retired instruction. The record is only
	// valid for the duration of the call — producers reuse the backing
	// storage — so consumers that keep data must copy it (copying the
	// Record value copies everything; it contains no references).
	Consume(r *Record)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(r *Record)

// Consume calls f(r).
func (f ConsumerFunc) Consume(r *Record) { f(r) }

// Tee fans a stream out to several consumers in order.
type Tee []Consumer

// Consume forwards r to every consumer in the tee.
func (t Tee) Consume(r *Record) {
	for _, c := range t {
		c.Consume(r)
	}
}

// Counter counts records and value-producing records; a trivial consumer
// used by tools and tests.
type Counter struct {
	Records    int64
	ValueProds int64
}

// Consume implements Consumer.
func (c *Counter) Consume(r *Record) {
	c.Records++
	if r.HasDest {
		c.ValueProds++
	}
}
