package trace

import (
	"sync/atomic"

	"repro/internal/isa"
)

// AoSRecorder is the reference array-of-structs trace store: plain Record
// chunks, no compression, no spill. It is the differential baseline the
// columnar Recorder is proven bit-identical against (see the differential
// tests here and in internal/experiments) and the memory/throughput
// baseline the BenchmarkTraceStore pair measures, preserving the exact
// pre-columnar replay hot loop. Production code paths use Recorder.
type AoSRecorder struct {
	chunks [][]Record
	n      int64
	sealed bool
	passes atomic.Int64
}

// NewAoSRecorder returns an empty array-of-structs recorder.
func NewAoSRecorder() *AoSRecorder { return &AoSRecorder{} }

// Passes reports how many full replay passes have walked the buffer.
func (rc *AoSRecorder) Passes() int64 { return rc.passes.Load() }

// Len returns the number of recorded records.
func (rc *AoSRecorder) Len() int64 { return rc.n }

// Bytes returns the approximate in-memory size of the recorded trace.
func (rc *AoSRecorder) Bytes() int64 {
	return int64(len(rc.chunks)) * recorderChunkSize * recordMemBytes
}

// Seal marks recording complete; Consume panics afterwards.
func (rc *AoSRecorder) Seal() { rc.sealed = true }

// Sealed reports whether the recorder has been sealed.
func (rc *AoSRecorder) Sealed() bool { return rc.sealed }

// Consume implements Consumer by appending a copy of r.
func (rc *AoSRecorder) Consume(r *Record) {
	if rc.sealed {
		panic("trace: Consume on a sealed AoSRecorder (recording after publication)")
	}
	i := int(rc.n % recorderChunkSize)
	if i == 0 {
		rc.chunks = append(rc.chunks, make([]Record, recorderChunkSize))
	}
	rc.chunks[len(rc.chunks)-1][i] = *r
	rc.n++
}

// Replay feeds the recorded stream to the consumers in order, handing out
// pointers into the recorded buffer with no per-record copy.
func (rc *AoSRecorder) Replay(consumers ...Consumer) {
	rc.passes.Add(1)
	remaining := rc.n
	if len(consumers) == 1 {
		c := consumers[0]
		for _, chunk := range rc.chunks {
			chunk = clip(chunk, remaining)
			for i := range chunk {
				c.Consume(&chunk[i])
			}
			remaining -= int64(len(chunk))
		}
		return
	}
	for _, chunk := range rc.chunks {
		chunk = clip(chunk, remaining)
		for i := range chunk {
			for _, c := range consumers {
				c.Consume(&chunk[i])
			}
		}
		remaining -= int64(len(chunk))
	}
}

// ReplayDirs replays the recorded stream with each record's directive
// overridden by dirs[Addr] (DirNone outside dirs), patching a scratch copy.
func (rc *AoSRecorder) ReplayDirs(dirs []isa.Directive, consumers ...Consumer) {
	rc.passes.Add(1)
	var single Consumer
	if len(consumers) == 1 {
		single = consumers[0]
	}
	var rec Record
	remaining := rc.n
	for _, chunk := range rc.chunks {
		chunk = clip(chunk, remaining)
		for i := range chunk {
			rec = chunk[i]
			if a := rec.Addr; a >= 0 && a < int64(len(dirs)) {
				rec.Dir = dirs[a]
			} else {
				rec.Dir = isa.DirNone
			}
			if single != nil {
				single.Consume(&rec)
			} else {
				for _, c := range consumers {
					c.Consume(&rec)
				}
			}
		}
		remaining -= int64(len(chunk))
	}
}

// MultiEval replays the recorded stream once, feeding every record to each
// configuration — the AoS twin of Recorder.MultiEval.
func (rc *AoSRecorder) MultiEval(cfgs ...EvalConfig) int64 {
	if len(cfgs) == 0 {
		return 0
	}
	rc.passes.Add(1)
	var scratch Record
	remaining := rc.n
	for _, chunk := range rc.chunks {
		chunk = clip(chunk, remaining)
		for _, cfg := range cfgs {
			if cfg.Dirs == nil {
				c := cfg.Consumer
				for i := range chunk {
					c.Consume(&chunk[i])
				}
				continue
			}
			dirs, c := cfg.Dirs, cfg.Consumer
			for i := range chunk {
				scratch = chunk[i]
				if a := scratch.Addr; a >= 0 && a < int64(len(dirs)) {
					scratch.Dir = dirs[a]
				} else {
					scratch.Dir = isa.DirNone
				}
				c.Consume(&scratch)
			}
		}
		remaining -= int64(len(chunk))
	}
	return int64(len(cfgs) - 1)
}

// clip bounds a chunk to the records actually written (the final chunk is
// generally only partially filled).
func clip(chunk []Record, remaining int64) []Record {
	if int64(len(chunk)) > remaining {
		return chunk[:remaining]
	}
	return chunk
}
