package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func sampleRecords() []Record {
	return []Record{
		{Addr: 0, Op: isa.OpLDI, HasDest: true, Dest: 1, Value: 5, Seq: 0},
		{
			Addr: 1, Op: isa.OpADDI, Dir: isa.DirStride, HasDest: true, Dest: 1,
			Value: 6, Seq: 1, Reads: [2]RegRead{{Valid: true, Reg: 1}},
		},
		{
			Addr: 2, Op: isa.OpFLD, HasDest: true, DestFP: true, Dest: 3,
			Value: -42, Seq: 2, Phase: 1, HasMem: true, MemAddr: 77,
			Reads: [2]RegRead{{Valid: true, Reg: 2}},
		},
		{Addr: 3, Op: isa.OpBNE, Taken: true, Seq: 3, Reads: [2]RegRead{{Valid: true, Reg: 1}, {Valid: true, Reg: 0}}},
		{Addr: 4, Op: isa.OpFST, Seq: 4, HasMem: true, MemAddr: 1 << 40, Reads: [2]RegRead{{Valid: true, Reg: 5}, {Valid: true, FP: true, Reg: 6}}},
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for i := range recs {
		w.Consume(&recs[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(recs))
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

// TestFileRoundTripQuick pushes arbitrary well-formed records through the
// codec.
func TestFileRoundTripQuick(t *testing.T) {
	f := func(addr, seq, value, memAddr int64, opRaw, dir, dest, flags uint8, phase uint16, reads [2]uint8) bool {
		rec := Record{
			Addr:  addr,
			Seq:   seq,
			Value: value,
			Op:    isa.Opcode(opRaw%uint8(isa.NumOpcodes()-1) + 1),
			Dir:   isa.Directive(dir % 3),
			Phase: int(phase),
			Dest:  isa.Reg(dest % isa.NumIntRegs),
		}
		rec.HasDest = flags&1 != 0
		rec.DestFP = flags&2 != 0
		rec.Taken = flags&4 != 0
		if flags&8 != 0 {
			rec.HasMem = true
			rec.MemAddr = memAddr
		}
		for i, b := range reads {
			if b&0x80 != 0 {
				rec.Reads[i] = RegRead{Valid: true, FP: b&0x40 != 0, Reg: isa.Reg(b & 0x1f)}
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		w.Consume(&rec)
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var got Record
		if err := r.Next(&got); err != nil {
			return false
		}
		// VPTRC02 does not store Seq; the reader derives it from record
		// position, so the single record in this stream reads back as Seq 0.
		want := rec
		want.Seq = 0
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestFileV1RoundTripArbitrarySeq is the VPTRC01 compatibility regression
// test: the legacy format stores Seq on disk verbatim, so arbitrary
// (non-positional) Seq values must survive a v1 round trip even though the
// v2 format derives Seq from position.
func TestFileV1RoundTripArbitrarySeq(t *testing.T) {
	recs := sampleRecords()
	recs[0].Seq = 1 << 40
	recs[1].Seq = -7
	recs[2].Seq = 0
	recs[3].Seq = 999999999
	recs[4].Seq = 42

	var buf bytes.Buffer
	w, err := NewWriterFormat(&buf, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		w.Consume(&recs[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Format() != FormatV1 {
		t.Fatalf("Format = %v, want FormatV1", r.Format())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

// TestFileV2DerivesSeqFromPosition writes records whose Seq fields are
// garbage and checks the v2 reader reassigns stream positions.
func TestFileV2DerivesSeqFromPosition(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for i := range recs {
		recs[i].Seq = int64(1000 - i) // deliberately non-positional
		w.Consume(&recs[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Format() != FormatV2 {
		t.Fatalf("Format = %v, want FormatV2", r.Format())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Seq != int64(i) {
			t.Errorf("record %d: Seq = %d, want %d", i, got[i].Seq, i)
		}
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOT A TRACE FILE"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	recs := sampleRecords()
	w.Consume(&recs[0])
	w.Close()
	full := buf.Bytes()

	r, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	err = r.Next(&rec)
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record: err = %v, want non-EOF error", err)
	}
}

func TestReaderCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := r.Next(&rec); !errors.Is(err, io.EOF) {
		t.Errorf("empty trace: err = %v, want io.EOF", err)
	}
}

func TestReaderRejectsCorruptOpcode(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriterFormat(&buf, FormatV1)
	recs := sampleRecords()
	w.Consume(&recs[0])
	w.Close()
	b := buf.Bytes()
	b[8+32] = 0xee // opcode byte of first v1 record
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := r.Next(&rec); err == nil {
		t.Error("corrupt opcode accepted")
	}
}

func TestReaderV2RejectsCorruptFrame(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	recs := sampleRecords()
	for i := range recs {
		w.Consume(&recs[i])
	}
	w.Close()
	base := buf.Bytes()
	// Flipping any payload byte must trip the frame CRC.
	for _, off := range []int{16, 20, len(base) - 1} {
		b := bytes.Clone(base)
		b[off] ^= 0xff
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var rec Record
		err = r.Next(&rec)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("payload byte %d flipped: err = %v, want ErrCorrupt", off, err)
		}
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Counter
	tee := Tee{&a, &b}
	recs := sampleRecords()
	for i := range recs {
		tee.Consume(&recs[i])
	}
	if a.Records != int64(len(recs)) || b.Records != a.Records {
		t.Errorf("tee counts: %d, %d", a.Records, b.Records)
	}
	if a.ValueProds != 3 {
		t.Errorf("value producers = %d, want 3", a.ValueProds)
	}
}

func TestConsumerFunc(t *testing.T) {
	n := 0
	c := ConsumerFunc(func(*Record) { n++ })
	c.Consume(&Record{})
	if n != 1 {
		t.Error("ConsumerFunc did not invoke the function")
	}
}
