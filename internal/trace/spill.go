package trace

import (
	"fmt"
	"os"
)

// This file implements chunk-granular spill-to-disk for the Recorder.
// Encoded chunks past the resident-bytes budget are appended to an
// anonymous temp file and streamed back in sequential order during replay
// through a double-buffered prefetcher, so a trace larger than RAM replays
// at near-resident speed: the read of chunk k+1 overlaps the decode of
// chunk k, and the decode itself touches only the ~10 bytes/record encoded
// form.

// spillFile is an append-only, positionally-read temp file. The file is
// unlinked immediately after creation, so it is reclaimed by the kernel
// when the descriptor closes (explicitly, at Recorder GC, or at process
// exit) and can never leak past the process. Reads use ReadAt and are safe
// from any number of concurrent replay passes.
type spillFile struct {
	f   *os.File
	off int64
}

// newSpillFile creates the anonymous spill file in the default temp
// directory (respecting TMPDIR).
func newSpillFile() (*spillFile, error) {
	f, err := os.CreateTemp("", "vptrc-spill-*")
	if err != nil {
		return nil, err
	}
	// Unlink while keeping the descriptor: the file has no name from here
	// on and vanishes with the last close.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, err
	}
	return &spillFile{f: f}, nil
}

// write appends p and returns the offset it was written at.
func (s *spillFile) write(p []byte) (int64, error) {
	off := s.off
	if _, err := s.f.WriteAt(p, off); err != nil {
		return 0, err
	}
	s.off += int64(len(p))
	return off, nil
}

func (s *spillFile) close() error { return s.f.Close() }

// prefetched is one spilled chunk read back into a recycled buffer.
type prefetched struct {
	data []byte
	err  error
}

// prefetcher streams a pass's spilled chunks back from disk one read ahead
// of the decode. Two buffers rotate through the free/out channels: while
// the replay loop decodes one, the reader goroutine fills the other, and
// the out channel's single slot keeps the reader at most one chunk ahead.
// Each replay pass owns its own prefetcher, so concurrent passes over one
// sealed Recorder never share read state.
type prefetcher struct {
	out  chan prefetched
	free chan []byte
	done chan struct{}
}

// startPrefetch begins reading the spilled chunks of chunks (in order) from
// sf. The caller must consume via next/recycle and must call stop when the
// pass ends, normally or not, so the reader goroutine always exits.
func startPrefetch(sf *spillFile, chunks []rchunk) *prefetcher {
	p := &prefetcher{
		out:  make(chan prefetched, 1),
		free: make(chan []byte, 2),
		done: make(chan struct{}),
	}
	p.free <- nil
	p.free <- nil
	go func() {
		for i := range chunks {
			c := &chunks[i]
			if c.data != nil {
				continue // resident chunk, nothing to read
			}
			var buf []byte
			select {
			case buf = <-p.free:
			case <-p.done:
				return
			}
			if cap(buf) < int(c.size) {
				buf = make([]byte, c.size)
			}
			buf = buf[:c.size]
			_, err := sf.f.ReadAt(buf, c.off)
			select {
			case p.out <- prefetched{data: buf, err: err}:
			case <-p.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return p
}

// next returns the next spilled chunk's encoded bytes. The buffer belongs
// to the caller until recycle.
func (p *prefetcher) next() []byte {
	got := <-p.out
	if got.err != nil {
		panic(fmt.Sprintf("trace: read spilled chunk: %v", got.err))
	}
	return got.data
}

// recycle returns a buffer obtained from next to the reader.
func (p *prefetcher) recycle(buf []byte) {
	select {
	case p.free <- buf:
	default: // stop already drained the pass; drop the buffer
	}
}

// stop terminates the reader goroutine. Safe to call whether or not the
// pass consumed every chunk (a panicking consumer unwinds through here via
// the walkChunks defer).
func (p *prefetcher) stop() { close(p.done) }
