package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/isa"
)

// batchCapture records every delivered record through both consumer
// contracts, materializing batches record by record through Batch.Record —
// so comparing its stream against a scalar capture checks every column of
// every batch against the reference decode, field for field.
type batchCapture struct {
	recs    []Record
	batches int
	scalars int
}

func (c *batchCapture) Consume(r *Record) {
	c.scalars++
	c.recs = append(c.recs, *r)
}

func (c *batchCapture) ConsumeBatch(b *Batch) {
	c.batches++
	if b.N != len(b.Op) || b.N != len(b.Flags) || b.N != len(b.Dest) || 2*b.N != len(b.Reads) ||
		b.N != len(b.Dir) || b.N != len(b.Addr) || b.N != len(b.Value) ||
		b.N != len(b.MemAddr) || b.N != len(b.Phase) || b.N != len(b.Seq) {
		panic("trace: batch column lengths disagree with N")
	}
	var r Record
	for i := 0; i < b.N; i++ {
		b.Record(i, &r)
		c.recs = append(c.recs, r)
	}
}

// fillRandom records one random stream into rc and returns it.
func fillRandom(rng *rand.Rand, n int64, rc *Recorder) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = randomRecord(rng, int64(i))
		rc.Consume(&recs[i])
	}
	return recs
}

// TestBatchMatchesScalarReplay is the core batch differential test: the
// batch walk must deliver the same streams as the scalar reference path for
// Replay and ReplayDirs, across chunk boundaries and with a partial staged
// tail (which always flows through scalar Consume).
func TestBatchMatchesScalarReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rc := NewRecorder()
	fillRandom(rng, recorderChunkSize+recorderChunkSize/2, rc)

	var want capture // scalar-only consumer: forces the reference walk
	rc.Replay(&want)
	got := &batchCapture{}
	rc.Replay(got)
	if got.batches == 0 {
		t.Fatal("batch consumer never received a batch")
	}
	if got.scalars != recorderChunkSize/2 {
		t.Fatalf("staged tail delivered %d scalar records, want %d", got.scalars, recorderChunkSize/2)
	}
	if !reflect.DeepEqual(want.recs, got.recs) {
		t.Fatal("batch Replay differs from the scalar reference")
	}

	dirs := testDirs(rng)
	var wantD capture
	rc.ReplayDirs(dirs, &wantD)
	gotD := &batchCapture{}
	rc.ReplayDirs(dirs, gotD)
	if !reflect.DeepEqual(wantD.recs, gotD.recs) {
		t.Fatal("batch ReplayDirs differs from the scalar reference")
	}

	// The multi-consumer batch fan-out must match too.
	gA, gB := &batchCapture{}, &batchCapture{}
	rc.Replay(gA, gB)
	if !reflect.DeepEqual(want.recs, gA.recs) || !reflect.DeepEqual(want.recs, gB.recs) {
		t.Fatal("multi-consumer batch Replay differs from the scalar reference")
	}
}

// TestBatchMatchesScalarSpilled runs the batch differential across memory
// budgets that spill some or all chunks to disk, covering the batch-owned
// spill readback scratch.
func TestBatchMatchesScalarSpilled(t *testing.T) {
	const n = 4*recorderChunkSize + 123
	rng := rand.New(rand.NewSource(12))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = randomRecord(rng, int64(i))
	}
	dirs := testDirs(rng)
	for _, budget := range []int64{0, 1, 64 << 10, 1 << 20} {
		rc := NewRecorder()
		rc.SetMemBudget(budget)
		for i := range recs {
			rc.Consume(&recs[i])
		}
		rc.Seal()
		if budget > 0 && rc.SpilledChunks() == 0 {
			t.Fatalf("budget %d: nothing spilled", budget)
		}

		var want, wantD capture
		rc.Replay(&want)
		rc.ReplayDirs(dirs, &wantD)

		got, gotD := &batchCapture{}, &batchCapture{}
		rc.Replay(got)
		rc.ReplayDirs(dirs, gotD)
		if !reflect.DeepEqual(want.recs, got.recs) {
			t.Fatalf("budget %d: batch Replay differs from scalar", budget)
		}
		if !reflect.DeepEqual(wantD.recs, gotD.recs) {
			t.Fatalf("budget %d: batch ReplayDirs differs from scalar", budget)
		}

		m1, m2 := &batchCapture{}, &batchCapture{}
		rc.MultiEval(EvalConfig{Consumer: m1}, EvalConfig{Dirs: dirs, Consumer: m2})
		if !reflect.DeepEqual(want.recs, m1.recs) || !reflect.DeepEqual(wantD.recs, m2.recs) {
			t.Fatalf("budget %d: batch MultiEval differs from scalar", budget)
		}
		if err := rc.Close(); err != nil {
			t.Fatalf("budget %d: Close: %v", budget, err)
		}
	}
}

// TestBatchMultiEvalMixed drives MultiEval with batch and scalar consumers
// in the same configuration set (the vpserve sweep shape: vpsim engines are
// batch kernels, ILP machines scalar): every consumer must still observe
// exactly its own ReplayDirs/Replay stream.
func TestBatchMultiEvalMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rc := NewRecorder()
	fillRandom(rng, 2*recorderChunkSize+777, rc)
	dirs := testDirs(rng)

	var want, wantD, wantShort capture
	rc.Replay(&want)
	rc.ReplayDirs(dirs, &wantD)
	rc.ReplayDirs(dirs[:100], &wantShort)

	b1, b2 := &batchCapture{}, &batchCapture{}
	var s1, s2 capture
	saved := rc.MultiEval(
		EvalConfig{Consumer: b1},
		EvalConfig{Consumer: &s1},
		EvalConfig{Dirs: dirs, Consumer: b2},
		EvalConfig{Dirs: dirs[:100], Consumer: &s2},
	)
	if saved != 3 {
		t.Fatalf("MultiEval saved = %d, want 3", saved)
	}
	if b1.batches == 0 || b2.batches == 0 {
		t.Fatal("batch consumers did not run on the batch path")
	}
	if !reflect.DeepEqual(want.recs, b1.recs) {
		t.Fatal("mixed MultiEval: plain batch config differs")
	}
	if !reflect.DeepEqual(want.recs, s1.recs) {
		t.Fatal("mixed MultiEval: plain scalar config differs")
	}
	if !reflect.DeepEqual(wantD.recs, b2.recs) {
		t.Fatal("mixed MultiEval: patched batch config differs")
	}
	if !reflect.DeepEqual(wantShort.recs, s2.recs) {
		t.Fatal("mixed MultiEval: patched scalar config differs")
	}
}

// TestBatchFileRoundTrip proves the batch path over traces that crossed the
// file formats: streams written as VPTRC01 and VPTRC02 and read back into a
// fresh Recorder replay identically on the batch and scalar paths, and
// match the original stream (v1 and v2 preserve all fields; v2 derives Seq
// from position, which these streams satisfy by construction).
func TestBatchFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	orig := make([]Record, recorderChunkSize+345)
	for i := range orig {
		orig[i] = randomRecord(rng, int64(i))
		// VPTRC01 stores Phase as uint16, so clamp the occasional -1 the
		// random generator produces to keep the stream v1-representable.
		if orig[i].Phase < 0 {
			orig[i].Phase = 0
		}
	}
	for _, format := range []Format{FormatV1, FormatV2} {
		var buf bytes.Buffer
		w, err := NewWriterFormat(&buf, format)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			w.Consume(&orig[i])
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		tr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		rc := NewRecorder()
		var r Record
		for {
			if err := tr.Next(&r); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				t.Fatal(err)
			}
			rc.Consume(&r)
		}
		rc.Seal()

		var want capture
		rc.Replay(&want)
		if !reflect.DeepEqual(orig, want.recs) {
			t.Fatalf("%v: scalar replay differs from the original stream", format)
		}
		got := &batchCapture{}
		rc.Replay(got)
		if !reflect.DeepEqual(orig, got.recs) {
			t.Fatalf("%v: batch replay differs from the original stream", format)
		}
	}
}

// TestBatchCounterMatchesScalar pins the Counter batch kernel against its
// scalar loop.
func TestBatchCounterMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rc := NewRecorder()
	fillRandom(rng, recorderChunkSize+99, rc)

	var scalar, batch Counter
	rc.SetScalarReplay(true)
	rc.Replay(&scalar)
	rc.SetScalarReplay(false)
	rc.Replay(&batch)
	if scalar != batch {
		t.Fatalf("Counter batch kernel %+v differs from scalar %+v", batch, scalar)
	}
}

// TestScalarReplayEscapeHatch checks SetScalarReplay forces the reference
// path: a batch-capable consumer must see only scalar Consume calls.
func TestScalarReplayEscapeHatch(t *testing.T) {
	rc := NewRecorder()
	for i := int64(0); i < recorderChunkSize; i++ {
		r := synthRecord(i)
		rc.Consume(&r)
	}
	rc.Seal()
	rc.SetScalarReplay(true)

	c := &batchCapture{}
	rc.Replay(c)
	if c.batches != 0 {
		t.Fatalf("scalar-replay Replay delivered %d batches, want 0", c.batches)
	}
	if c.scalars != recorderChunkSize {
		t.Fatalf("scalar-replay Replay delivered %d records, want %d", c.scalars, recorderChunkSize)
	}
	m := &batchCapture{}
	rc.MultiEval(EvalConfig{Consumer: m})
	if m.batches != 0 {
		t.Fatalf("scalar-replay MultiEval delivered %d batches, want 0", m.batches)
	}
}

// TestBatchConcurrentReplays drives concurrent batch replays — plain,
// patched and mixed MultiEval — over one spilled, sealed recorder. Each
// pass owns its batches and spill scratch, so the -race CI job must see no
// sharing.
func TestBatchConcurrentReplays(t *testing.T) {
	const n = 3 * recorderChunkSize
	rc := NewRecorder()
	rc.SetMemBudget(1) // spill everything
	for i := int64(0); i < n; i++ {
		r := synthRecord(i)
		rc.Consume(&r)
	}
	rc.Seal()
	defer rc.Close()

	var want capture
	rc.Replay(&want)
	dirs := make([]isa.Directive, 500)
	for i := range dirs {
		dirs[i] = isa.DirStride
	}
	var wantD capture
	rc.ReplayDirs(dirs, &wantD)

	var wg sync.WaitGroup
	errs := make(chan string, 12)
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			got := &batchCapture{}
			rc.Replay(got)
			if !reflect.DeepEqual(want.recs, got.recs) {
				errs <- "concurrent batch Replay differs"
			}
		}()
		go func() {
			defer wg.Done()
			got := &batchCapture{}
			rc.ReplayDirs(dirs, got)
			if !reflect.DeepEqual(wantD.recs, got.recs) {
				errs <- "concurrent batch ReplayDirs differs"
			}
		}()
		go func() {
			defer wg.Done()
			a := &batchCapture{}
			var b capture
			rc.MultiEval(EvalConfig{Consumer: a}, EvalConfig{Dirs: dirs, Consumer: &b})
			if !reflect.DeepEqual(want.recs, a.recs) || !reflect.DeepEqual(wantD.recs, b.recs) {
				errs <- "concurrent mixed MultiEval differs"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRecordingPooledBuffers checks sealed recorders return their staging
// and encoder scratch to the pools and that recorded data survives: two
// recorders built back to back (the second reusing the first's pooled
// buffers) must hold independent, correct streams.
func TestRecordingPooledBuffers(t *testing.T) {
	build := func(seed int64) (*Recorder, []Record) {
		rng := rand.New(rand.NewSource(seed))
		rc := NewRecorder()
		recs := fillRandom(rng, recorderChunkSize+50, rc)
		rc.Seal()
		return rc, recs
	}
	rc1, recs1 := build(21)
	rc2, recs2 := build(22)

	var got1, got2 capture
	rc1.Replay(&got1)
	rc2.Replay(&got2)
	if !reflect.DeepEqual(recs1, got1.recs) {
		t.Fatal("first pooled recorder corrupted its stream")
	}
	if !reflect.DeepEqual(recs2, got2.recs) {
		t.Fatal("second pooled recorder corrupted its stream")
	}
}

// TestReplayResidentBytes pins the spill-aware resident accounting: fully
// resident recorders report their encoded bytes, spilled ones add the
// double-buffered readback working set instead of reporting zero.
func TestReplayResidentBytes(t *testing.T) {
	resident := NewRecorder()
	for i := int64(0); i < recorderChunkSize; i++ {
		r := synthRecord(i)
		resident.Consume(&r)
	}
	resident.Seal()
	if got, want := resident.ReplayResidentBytes(), resident.BytesResident(); got != want {
		t.Fatalf("resident ReplayResidentBytes = %d, want %d", got, want)
	}
	if resident.ReplayResidentBytes() == 0 {
		t.Fatal("resident ReplayResidentBytes = 0")
	}

	spilled := NewRecorder()
	spilled.SetMemBudget(1)
	for i := int64(0); i < 2*recorderChunkSize; i++ {
		r := synthRecord(i)
		spilled.Consume(&r)
	}
	spilled.Seal()
	defer spilled.Close()
	if spilled.BytesResident() != 0 {
		t.Fatalf("spilled BytesResident = %d, want 0", spilled.BytesResident())
	}
	got := spilled.ReplayResidentBytes()
	if got <= 0 {
		t.Fatalf("spilled ReplayResidentBytes = %d, want > 0", got)
	}
	// Two read buffers of the largest chunk.
	if max := spilled.EncodedBytes(); got >= 2*max {
		t.Fatalf("spilled ReplayResidentBytes = %d, want < 2*EncodedBytes (%d)", got, 2*max)
	}
}
