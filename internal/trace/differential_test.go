package trace

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/isa"
)

// randomRecord builds an arbitrary record within canonical ISA field ranges,
// stressing delta chains harder than the regular synthetic stream.
func randomRecord(rng *rand.Rand, seq int64) Record {
	r := Record{
		Addr:    rng.Int63n(1 << 20),
		Op:      isa.Opcode(rng.Intn(isa.NumOpcodes()-1) + 1),
		Dir:     isa.Directive(rng.Intn(3)),
		HasDest: rng.Intn(2) == 0,
		DestFP:  rng.Intn(4) == 0,
		Dest:    isa.Reg(rng.Intn(64)),
		Value:   rng.Int63() - rng.Int63(),
		Phase:   rng.Intn(5) - 1,
		Seq:     seq,
		Taken:   rng.Intn(3) == 0,
	}
	if rng.Intn(3) == 0 {
		r.HasMem = true
		r.MemAddr = rng.Int63n(1 << 30)
	}
	for k := range r.Reads {
		if rng.Intn(2) == 0 {
			r.Reads[k] = RegRead{Valid: true, FP: rng.Intn(4) == 0, Reg: isa.Reg(rng.Intn(64))}
		}
	}
	return r
}

// fillBoth feeds one random stream to both recorders.
func fillBoth(rng *rand.Rand, n int64, a *AoSRecorder, b *Recorder) {
	for i := int64(0); i < n; i++ {
		r := randomRecord(rng, i)
		a.Consume(&r)
		b.Consume(&r)
	}
}

// testDirs builds a directive table covering part of the address range, so
// ReplayDirs exercises both the in-table and out-of-table patch paths.
func testDirs(rng *rand.Rand) []isa.Directive {
	dirs := make([]isa.Directive, 1<<19) // half the address space
	for i := range dirs {
		dirs[i] = isa.Directive(rng.Intn(3))
	}
	return dirs
}

// TestColumnarMatchesAoSReplay is the core differential test: the columnar
// Recorder must replay bit-identically to the array-of-structs baseline,
// across chunk boundaries and with a partial staged tail.
func TestColumnarMatchesAoSReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	aos, col := NewAoSRecorder(), NewRecorder()
	fillBoth(rng, recorderChunkSize+recorderChunkSize/2, aos, col)

	var wantR, gotR capture
	aos.Replay(&wantR)
	col.Replay(&gotR)
	if !reflect.DeepEqual(wantR.recs, gotR.recs) {
		t.Fatal("Replay differs from the AoS baseline")
	}

	dirs := testDirs(rng)
	var wantD, gotD capture
	aos.ReplayDirs(dirs, &wantD)
	col.ReplayDirs(dirs, &gotD)
	if !reflect.DeepEqual(wantD.recs, gotD.recs) {
		t.Fatal("ReplayDirs differs from the AoS baseline")
	}
}

func TestColumnarMatchesAoSMultiEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	aos, col := NewAoSRecorder(), NewRecorder()
	fillBoth(rng, recorderChunkSize+777, aos, col)
	dirs := testDirs(rng)

	run := func(rc interface{ MultiEval(...EvalConfig) int64 }) [3][]Record {
		var a, b, c capture
		saved := rc.MultiEval(
			EvalConfig{Consumer: &a},
			EvalConfig{Dirs: dirs, Consumer: &b},
			EvalConfig{Dirs: dirs[:100], Consumer: &c},
		)
		if saved != 2 {
			t.Fatalf("MultiEval saved = %d, want 2", saved)
		}
		return [3][]Record{a.recs, b.recs, c.recs}
	}
	want, got := run(aos), run(col)
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("MultiEval config %d differs from the AoS baseline", i)
		}
	}
}

// TestSpilledMatchesResident replays the same stream under a range of
// memory budgets — fully resident, partially spilled, fully spilled — and
// requires every mode to be bit-identical to the unbudgeted recorder.
func TestSpilledMatchesResident(t *testing.T) {
	const n = 4*recorderChunkSize + 123
	rng := rand.New(rand.NewSource(3))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = randomRecord(rng, int64(i))
	}
	record := func(budget int64) *Recorder {
		rc := NewRecorder()
		rc.SetMemBudget(budget)
		for i := range recs {
			rc.Consume(&recs[i])
		}
		rc.Seal()
		return rc
	}

	resident := record(0)
	defer resident.Close()
	var want capture
	resident.Replay(&want)
	if resident.SpilledChunks() != 0 {
		t.Fatalf("unbudgeted recorder spilled %d chunks", resident.SpilledChunks())
	}

	dirs := testDirs(rng)
	var wantDirs capture
	resident.ReplayDirs(dirs, &wantDirs)

	for _, budget := range []int64{1, 64 << 10, 1 << 20} {
		rc := record(budget)
		if rc.SpilledChunks() == 0 {
			t.Fatalf("budget %d: nothing spilled (test not exercising the spill path)", budget)
		}
		if rc.BytesResident() > budget && rc.SpilledChunks() < 5 {
			t.Errorf("budget %d: resident %d bytes over budget", budget, rc.BytesResident())
		}
		if rc.Len() != n {
			t.Fatalf("budget %d: Len = %d, want %d", budget, rc.Len(), n)
		}

		var got capture
		rc.Replay(&got)
		if !reflect.DeepEqual(want.recs, got.recs) {
			t.Fatalf("budget %d: spilled Replay differs from resident", budget)
		}
		var gotDirs capture
		rc.ReplayDirs(dirs, &gotDirs)
		if !reflect.DeepEqual(wantDirs.recs, gotDirs.recs) {
			t.Fatalf("budget %d: spilled ReplayDirs differs from resident", budget)
		}

		var m1, m2 capture
		rc.MultiEval(EvalConfig{Consumer: &m1}, EvalConfig{Dirs: dirs, Consumer: &m2})
		if !reflect.DeepEqual(want.recs, m1.recs) || !reflect.DeepEqual(wantDirs.recs, m2.recs) {
			t.Fatalf("budget %d: spilled MultiEval differs from resident", budget)
		}

		if err := rc.Close(); err != nil {
			t.Fatalf("budget %d: Close: %v", budget, err)
		}
	}
}

// TestSpilledConcurrentReplays drives several goroutines through every
// replay path of one spilled, sealed recorder; each pass owns its own
// prefetcher, so concurrent passes must not interfere. Run under -race by
// the CI spill job.
func TestSpilledConcurrentReplays(t *testing.T) {
	const n = 3 * recorderChunkSize
	rc := NewRecorder()
	rc.SetMemBudget(1) // spill everything
	for i := int64(0); i < n; i++ {
		r := synthRecord(i)
		rc.Consume(&r)
	}
	rc.Seal()
	defer rc.Close()
	if rc.SpilledChunks() != 3 {
		t.Fatalf("SpilledChunks = %d, want 3", rc.SpilledChunks())
	}

	var want capture
	rc.Replay(&want)
	dirs := make([]isa.Directive, 500)
	for i := range dirs {
		dirs[i] = isa.DirStride
	}

	var wg sync.WaitGroup
	errs := make(chan string, 12)
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			var got capture
			rc.Replay(&got)
			if !reflect.DeepEqual(want.recs, got.recs) {
				errs <- "concurrent Replay differs"
			}
		}()
		go func() {
			defer wg.Done()
			var got capture
			rc.ReplayDirs(dirs, &got)
			if len(got.recs) != n {
				errs <- "concurrent ReplayDirs short"
			}
		}()
		go func() {
			defer wg.Done()
			var a, b capture
			rc.MultiEval(EvalConfig{Consumer: &a}, EvalConfig{Dirs: dirs, Consumer: &b})
			if !reflect.DeepEqual(want.recs, a.recs) || len(b.recs) != n {
				errs <- "concurrent MultiEval differs"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSpillAccounting pins the storage counters: encoded bytes split between
// resident and spilled, and Bytes() reflecting only the resident share.
func TestSpillAccounting(t *testing.T) {
	rc := NewRecorder()
	rc.SetMemBudget(1)
	for i := int64(0); i < 2*recorderChunkSize+10; i++ {
		r := synthRecord(i)
		rc.Consume(&r)
	}
	// Two full chunks flushed; 10 records still staged.
	if rc.SpilledChunks() != 2 {
		t.Fatalf("SpilledChunks = %d, want 2", rc.SpilledChunks())
	}
	if rc.BytesResident() != 0 {
		t.Errorf("BytesResident = %d, want 0 under a 1-byte budget", rc.BytesResident())
	}
	if rc.EncodedBytes() == 0 {
		t.Error("EncodedBytes = 0 after two flushed chunks")
	}
	if got, want := rc.Bytes(), int64(10)*recordMemBytes; got != want {
		t.Errorf("Bytes = %d, want %d (staging tail only)", got, want)
	}
	rc.Seal() // flushes the tail as a third spilled chunk
	if rc.SpilledChunks() != 3 {
		t.Errorf("SpilledChunks after Seal = %d, want 3", rc.SpilledChunks())
	}
	if rc.Bytes() != 0 {
		t.Errorf("Bytes after Seal = %d, want 0", rc.Bytes())
	}
	if rc.Close() != nil {
		t.Error("Close failed")
	}
	if rc.Close() != nil {
		t.Error("second Close not idempotent")
	}
}

// TestSpillBudgetKeepsHeadResident checks the budget admits chunks until
// full rather than spilling everything: with room for roughly one encoded
// chunk, the first chunk stays resident and later ones spill.
func TestSpillBudgetKeepsHeadResident(t *testing.T) {
	probe := NewRecorder()
	for i := int64(0); i < recorderChunkSize; i++ {
		r := synthRecord(i)
		probe.Consume(&r)
	}
	oneChunk := probe.EncodedBytes()
	if oneChunk == 0 {
		t.Fatal("probe chunk did not flush")
	}

	rc := NewRecorder()
	rc.SetMemBudget(oneChunk + oneChunk/2)
	for i := int64(0); i < 3*recorderChunkSize; i++ {
		r := synthRecord(i)
		rc.Consume(&r)
	}
	rc.Seal()
	defer rc.Close()
	if rc.SpilledChunks() == 0 || rc.BytesResident() == 0 {
		t.Fatalf("want a resident head and a spilled tail; resident=%d spilled=%d",
			rc.BytesResident(), rc.SpilledChunks())
	}
	var got capture
	rc.Replay(&got)
	if int64(len(got.recs)) != rc.Len() {
		t.Fatalf("mixed resident/spilled replay returned %d records, want %d", len(got.recs), rc.Len())
	}
}
