package trace

import (
	"sync/atomic"

	"repro/internal/isa"
)

// This file implements the record-once/replay-many trace cache. A Recorder
// captures a dynamic instruction stream into a flat chunked buffer; Replay
// feeds it back to any number of consumers, bit-identically to the live
// run, without re-interpreting the program. The experiment drivers use it to
// run the evaluation input once per benchmark and replay the recorded
// stream for every threshold and prediction-engine configuration.

// recorderChunkSize is the number of records per storage chunk (16384
// records × 56 B ≈ 0.9 MiB). Chunked growth keeps append cost flat and
// avoids ever copying the whole trace during recording.
const recorderChunkSize = 1 << 14

// Recorder is a Consumer that captures the stream for later replay.
// Recording is single-threaded (one producer), but a finished Recorder is
// immutable and Replay/ReplayDirs may be called concurrently from multiple
// goroutines. Owners that share a Recorder across goroutines (the
// experiments context, the vpserve trace cache) must Seal it first: sealing
// marks recording complete, turns any further Consume into a panic, and
// documents the immutability the concurrent replays rely on. Replay hands
// records out by pointer into the shared buffer — consumers must treat them
// as read-only for the duration of the Consume call (the same contract as a
// live run); a consumer that wrote through the pointer would corrupt every
// other replay, and the -race stress tests in internal/experiments exist to
// catch any such consumer.
type Recorder struct {
	chunks [][]Record
	n      int64
	sealed bool
	passes atomic.Int64 // full replay passes over the buffer, for amortization accounting
}

// Passes reports how many full replay passes have walked the recorded
// buffer (Replay, ReplayDirs and MultiEval each count one, however many
// consumers they fed). The single-pass sweep tests and the vpserve
// amortization metrics read it.
func (rc *Recorder) Passes() int64 { return rc.passes.Load() }

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Len returns the number of recorded records.
func (rc *Recorder) Len() int64 { return rc.n }

// Bytes returns the approximate in-memory size of the recorded trace.
func (rc *Recorder) Bytes() int64 {
	return int64(len(rc.chunks)) * recorderChunkSize * 56
}

// Seal marks recording complete. A sealed Recorder is immutable — Consume
// panics — and may be replayed concurrently from any number of goroutines.
// Sealing is idempotent. The caller must establish a happens-before edge
// between Seal and the first concurrent Replay (publishing the Recorder
// through a mutex-guarded cache, a channel, or sync.Once all qualify).
func (rc *Recorder) Seal() { rc.sealed = true }

// Sealed reports whether the Recorder has been sealed.
func (rc *Recorder) Sealed() bool { return rc.sealed }

// Consume implements Consumer by appending a copy of r.
func (rc *Recorder) Consume(r *Record) {
	if rc.sealed {
		panic("trace: Consume on a sealed Recorder (recording after publication)")
	}
	i := int(rc.n % recorderChunkSize)
	if i == 0 {
		rc.chunks = append(rc.chunks, make([]Record, recorderChunkSize))
	}
	rc.chunks[len(rc.chunks)-1][i] = *r
	rc.n++
}

// Replay feeds the recorded stream to the consumers in order. Records are
// handed out by pointer into the recorded buffer with no per-record copy,
// under the same contract as a live run: the record is only valid for the
// duration of the Consume call, and consumers must not modify it.
func (rc *Recorder) Replay(consumers ...Consumer) {
	rc.passes.Add(1)
	remaining := rc.n
	if len(consumers) == 1 {
		// The common fan-out, with the consumer interface loaded once.
		c := consumers[0]
		for _, chunk := range rc.chunks {
			chunk = clip(chunk, remaining)
			for i := range chunk {
				c.Consume(&chunk[i])
			}
			remaining -= int64(len(chunk))
		}
		return
	}
	for _, chunk := range rc.chunks {
		chunk = clip(chunk, remaining)
		for i := range chunk {
			for _, c := range consumers {
				c.Consume(&chunk[i])
			}
		}
		remaining -= int64(len(chunk))
	}
}

// ReplayDirs replays the recorded stream with the directive of each record
// overridden by dirs[Addr] (DirNone for addresses outside dirs). Annotation
// changes only the directive bits of a program — no code motion — so
// replaying a plain-program trace under an annotated program's directives is
// bit-identical to re-executing the annotated program. Each record is
// patched in a scratch copy; the recorded buffer is never modified, keeping
// concurrent replays safe.
func (rc *Recorder) ReplayDirs(dirs []isa.Directive, consumers ...Consumer) {
	rc.passes.Add(1)
	var single Consumer
	if len(consumers) == 1 {
		single = consumers[0]
	}
	var rec Record
	remaining := rc.n
	for _, chunk := range rc.chunks {
		chunk = clip(chunk, remaining)
		for i := range chunk {
			rec = chunk[i]
			if a := rec.Addr; a >= 0 && a < int64(len(dirs)) {
				rec.Dir = dirs[a]
			} else {
				rec.Dir = isa.DirNone
			}
			if single != nil {
				single.Consume(&rec)
			} else {
				for _, c := range consumers {
					c.Consume(&rec)
				}
			}
		}
		remaining -= int64(len(chunk))
	}
}

// clip bounds a chunk to the records actually written (the final chunk is
// generally only partially filled).
func clip(chunk []Record, remaining int64) []Record {
	if int64(len(chunk)) > remaining {
		return chunk[:remaining]
	}
	return chunk
}

// DirsOf extracts the per-address directive table of a text segment, the
// input ReplayDirs expects. It lives here (rather than in the program
// package) so replay callers need only the text slice.
func DirsOf(text []isa.Instruction) []isa.Directive {
	dirs := make([]isa.Directive, len(text))
	for i := range text {
		dirs[i] = text[i].Dir
	}
	return dirs
}
