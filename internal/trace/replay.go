package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/isa"
)

// This file implements the record-once/replay-many trace cache. A Recorder
// captures a dynamic instruction stream into columnar compressed chunks;
// Replay feeds it back to any number of consumers, bit-identically to the
// live run, without re-interpreting the program. The experiment drivers use
// it to run the evaluation input once per benchmark and replay the recorded
// stream for every threshold and prediction-engine configuration.
//
// Storage is structure-of-arrays: records are staged in a plain buffer one
// chunk at a time and transposed into the packed columnar encoding of
// codec.go when the chunk fills (~10 bytes/record against the 56-byte
// Record struct). Replay runs a decode-into-scratch hot loop that
// materializes one Record per iteration, so consumers observe exactly the
// live-run contract and never touch the encoded form. When a resident-bytes
// budget is set, encoded chunks past the budget spill to an anonymous temp
// file and stream back in sequential order during replay through a
// double-buffered prefetcher (spill.go), so traces larger than RAM replay
// at near-resident speed.

// recorderChunkSize is the number of records per storage chunk: 16384
// records stage into ~0.9 MiB of Record structs and encode into roughly
// 100–300 KiB, a comfortable unit for both cache-resident decoding and
// sequential spill I/O.
const recorderChunkSize = 1 << 14

// recordMemBytes is the in-memory size of one decoded Record, the AoS
// footprint the columnar encoding is measured against.
const recordMemBytes = int64(unsafe.Sizeof(Record{}))

// rchunk is one encoded chunk: resident (data set) or spilled (data nil,
// off/size locating the encoding in the spill file).
type rchunk struct {
	data []byte
	off  int64
	size int32
	n    int32
}

// Recorder is a Consumer that captures the stream for later replay.
// Recording is single-threaded (one producer), but a finished Recorder is
// immutable and Replay/ReplayDirs/MultiEval may be called concurrently from
// multiple goroutines. Owners that share a Recorder across goroutines (the
// experiments context, the vpserve trace cache) must Seal it first: sealing
// marks recording complete, turns any further Consume into a panic, and
// documents the immutability the concurrent replays rely on. Replay hands
// records out by pointer under a strict read-only, duration-of-the-call
// contract (the same contract as a live run); the -race stress tests in
// internal/experiments drive every replay path from many goroutines to
// catch any consumer that violates it.
type Recorder struct {
	cols       *RecordColumns // column staging (default fused recording mode)
	tailSlab   *recSlab       // scratch for materializing the column tail in replays
	staged     []Record       // scalar-record staging (bit-identical reference mode)
	stagedSlab *recSlab       // pooled backing storage of staged; returned at Seal
	enc        *chunkEncoder
	chunks     []rchunk
	nFlushed   int64 // records in flushed (encoded or encode-queued) chunks

	memBudget     int64 // resident encoded-bytes budget; <=0 = fully resident
	residentBytes int64 // encoded bytes currently held in memory
	encodedBytes  int64 // encoded bytes total (resident + spilled)
	maxChunkBytes int64 // largest encoded chunk, the unit of spill readback
	spilledChunks int64
	chunksEncoded int64
	spill         *spillFile

	// mu guards the encoded-chunk state above (chunks through spill) while
	// the encode-ahead pipeline is live: appendEncoded runs on the encoder
	// goroutine, the accessors on the recording thread. Once sealed (or on
	// the sequential path) everything is synchronous and immutable.
	mu sync.Mutex

	ahead       *encodeAhead // background chunk encoder; nil on the sequential path
	aheadOff    bool         // pipeline decision made: encode inline
	stalls      atomic.Int64 // flushes that blocked waiting for a free stage
	encodeNanos atomic.Int64 // cumulative chunk-encode wall time

	scalarRecord bool // stage full Records and encode per record (reference implementation)
	scalarReplay bool // force the per-record Consumer path (reference implementation)
	sealed       bool
	passes       atomic.Int64 // full replay passes over the buffer, for amortization accounting
}

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetMemBudget bounds the encoded trace bytes the Recorder keeps resident in
// memory; chunks encoded past the budget spill to a temporary file (deleted
// on creation, so it can never outlive the process) and stream back during
// replay. A budget ≤ 0 keeps everything resident. The budget governs chunks
// encoded after the call, so set it before recording; the ~0.9 MiB staging
// buffer for the chunk being filled is not counted against it.
func (rc *Recorder) SetMemBudget(bytes int64) { rc.memBudget = bytes }

// SetScalarReplay forces every replay pass onto the scalar per-record
// Consumer path even for consumers that implement BatchConsumer. The batch
// column kernels are the default; the scalar loop is the reference
// implementation the batch path is differentially tested against, and this
// switch is the escape hatch the -scalar-replay flags of vpreport and
// vpserve expose. Set it before the Recorder is shared; replays only read it.
func (rc *Recorder) SetScalarReplay(scalar bool) { rc.scalarReplay = scalar }

// SetScalarRecord forces recording onto the scalar reference path: records
// are staged as full Record structs and varint-encoded one at a time by
// chunkEncoder.encode, exactly as before the fused column path existed. The
// default column path (fused VM staging plus chunk-seal batch encoding and
// the encode-ahead pipeline) is differentially tested to produce
// byte-identical chunks; this switch is the escape hatch the -scalar-record
// flags of vprun, vpreport and vpserve expose, and the reference the
// equivalence suites diff against. Set it before the first Consume.
func (rc *Recorder) SetScalarRecord(scalar bool) { rc.scalarRecord = scalar }

// ChunksEncoded reports how many chunks have been encoded so far (resident
// or spilled), the unit of the record-side observability metrics.
func (rc *Recorder) ChunksEncoded() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.chunksEncoded
}

// EncodeStalls reports how many chunk flushes blocked waiting for the
// encode-ahead pipeline to free a stage — the backpressure signal that the
// encoder, not the execution loop, is the recording bottleneck.
func (rc *Recorder) EncodeStalls() int64 { return rc.stalls.Load() }

// EncodeTime reports the cumulative wall time spent encoding chunks
// (whether inline or on the encode-ahead goroutine).
func (rc *Recorder) EncodeTime() time.Duration {
	return time.Duration(rc.encodeNanos.Load())
}

// Passes reports how many full replay passes have walked the recorded
// buffer (Replay, ReplayDirs and MultiEval each count one, however many
// consumers they fed). The single-pass sweep tests and the vpserve
// amortization metrics read it.
func (rc *Recorder) Passes() int64 { return rc.passes.Load() }

// stagedLen returns the number of records in the staging tail (scalar or
// column, whichever is active).
func (rc *Recorder) stagedLen() int {
	if rc.cols != nil {
		return rc.cols.N
	}
	return len(rc.staged)
}

// Len returns the number of recorded records.
func (rc *Recorder) Len() int64 { return rc.nFlushed + int64(rc.stagedLen()) }

// Bytes returns the approximate resident in-memory size of the recorded
// trace: the encoded chunks still held in memory plus the staging buffer.
// Spilled chunks do not count.
func (rc *Recorder) Bytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.residentBytes + int64(rc.stagedLen())*recordMemBytes
}

// EncodedBytes returns the total encoded size of all flushed chunks,
// resident and spilled. Records still in the staging buffer (at most one
// partial chunk; none once sealed) are not yet encoded.
func (rc *Recorder) EncodedBytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.encodedBytes
}

// BytesResident returns the encoded bytes currently held in memory.
func (rc *Recorder) BytesResident() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.residentBytes
}

// ReplayResidentBytes returns the peak in-memory working set of one replay
// pass over the flushed chunks: the resident encoded bytes plus, when any
// chunk has spilled, two chunk-sized read buffers (readback is double
// buffered — one chunk decoding while the next is fetched). This is the
// honest per-pass memory figure for a spilled trace, where BytesResident
// alone would report a misleading zero.
func (rc *Recorder) ReplayResidentBytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	b := rc.residentBytes
	if rc.spilledChunks > 0 {
		b += 2 * rc.maxChunkBytes
	}
	return b
}

// SpilledChunks returns how many chunks were written to the spill file.
func (rc *Recorder) SpilledChunks() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.spilledChunks
}

// Seal marks recording complete: the staging buffer is encoded and released,
// further Consume panics, and the Recorder may be replayed concurrently from
// any number of goroutines. Sealing is idempotent. The caller must establish
// a happens-before edge between Seal and the first concurrent Replay
// (publishing the Recorder through a mutex-guarded cache, a channel, or
// sync.Once all qualify).
func (rc *Recorder) Seal() {
	if rc.sealed {
		return
	}
	if rc.ahead != nil {
		// Stop the encode-ahead pipeline first: it drains every queued
		// stage in order, so the inline tail encode below lands last.
		rc.ahead.stop()
		rc.ahead = nil
	}
	if len(rc.staged) > 0 {
		rc.flushStaged()
	}
	if rc.cols != nil {
		if rc.cols.N > 0 {
			rc.nFlushed += int64(rc.cols.N)
			rc.encodeStage(rc.encoder(), rc.cols)
		}
		putCols(rc.cols)
		rc.cols = nil
	}
	rc.staged = nil
	if rc.stagedSlab != nil {
		putSlab(rc.stagedSlab)
		rc.stagedSlab = nil
	}
	if rc.tailSlab != nil {
		putSlab(rc.tailSlab)
		rc.tailSlab = nil
	}
	if rc.enc != nil {
		encoderPool.Put(rc.enc)
		rc.enc = nil
	}
	rc.sealed = true
}

// Sealed reports whether the Recorder has been sealed.
func (rc *Recorder) Sealed() bool { return rc.sealed }

// Close releases the spill file, if any. Replays must not be in flight.
// Close is optional — the spill file is unlinked at creation and the
// process's file-descriptor finalizer reclaims it when the Recorder is
// garbage-collected — but deterministic for tests and long-lived owners.
func (rc *Recorder) Close() error {
	if rc.spill == nil {
		return nil
	}
	err := rc.spill.close()
	rc.spill = nil
	return err
}

// Consume implements Consumer by appending a copy of r. On the default
// column path the record is destructured straight into the staging columns
// (so scalar producers and the fused VM loop share one representation); in
// scalar-record mode it is staged as a full Record, the reference path.
func (rc *Recorder) Consume(r *Record) {
	if rc.sealed {
		panic("trace: Consume on a sealed Recorder (recording after publication)")
	}
	if !rc.scalarRecord {
		st := rc.cols
		if st == nil {
			st = rc.newStage()
		}
		st.appendRecord(r)
		if st.N == st.Cap() {
			rc.FlushColumns()
		}
		return
	}
	if rc.staged == nil {
		// The ~0.9 MiB staging buffer comes from the replay slab pool (same
		// shape, same lifetime discipline) and returns there at Seal, so
		// recording a trace does not allocate it fresh per Recorder.
		rc.stagedSlab = getSlab()
		rc.staged = rc.stagedSlab.recs[:0]
	}
	rc.staged = append(rc.staged, *r)
	if len(rc.staged) == recorderChunkSize {
		rc.flushStaged()
	}
}

// newStage installs a fresh column stage positioned at the current stream
// offset.
func (rc *Recorder) newStage() *RecordColumns {
	st := getCols()
	st.FirstSeq = rc.nFlushed
	rc.cols = st
	return st
}

// ColumnStage implements ColumnAppender: it returns the live staging
// columns for fused recording, or nil when the recorder is sealed or in
// scalar-record mode (sending the producer down the per-record reference
// path). The producer appends by writing element N of every column and
// incrementing N, calling FlushColumns when N reaches Cap.
func (rc *Recorder) ColumnStage() *RecordColumns {
	if rc.sealed || rc.scalarRecord {
		return nil
	}
	if rc.cols == nil {
		return rc.newStage()
	}
	return rc.cols
}

// FlushColumns seals the filled column stage into one encoded chunk and
// returns the stage to continue appending into. On multi-core machines the
// stage is handed to the encode-ahead pipeline and a recycled stage comes
// back immediately, overlapping execution with compression and spill
// writes; single-core machines encode inline (same chunks, same order,
// byte-identical output).
func (rc *Recorder) FlushColumns() *RecordColumns {
	st := rc.cols
	if st == nil || st.N == 0 {
		return rc.ColumnStage()
	}
	rc.nFlushed += int64(st.N)
	if rc.pipeline() {
		rc.ahead.submit(st)
		st = rc.ahead.acquire(rc)
		rc.cols = st
	} else {
		rc.encodeStage(rc.encoder(), st)
		st.N = 0
	}
	st.FirstSeq = rc.nFlushed
	return st
}

// FlushTail implements ColumnAppender. The Recorder buffers: the partial
// stage stays staged (replayable as the tail, encoded at Seal), so there is
// nothing to do.
func (rc *Recorder) FlushTail() {}

// pipeline reports whether chunk encoding runs on the encode-ahead
// goroutine, starting it on first use. The pipeline only helps when another
// CPU can run the encoder; at GOMAXPROCS=1 it is pure scheduling overhead,
// so the flush encodes inline — the sequential fallback.
func (rc *Recorder) pipeline() bool {
	if rc.ahead != nil {
		return true
	}
	if rc.aheadOff {
		return false
	}
	if runtime.GOMAXPROCS(0) > 1 {
		rc.ahead = startEncodeAhead(rc)
		return true
	}
	rc.aheadOff = true
	return false
}

// encoder returns the recorder-owned chunk encoder, pooled across
// Recorders.
func (rc *Recorder) encoder() *chunkEncoder {
	if rc.enc == nil {
		rc.enc = encoderPool.Get().(*chunkEncoder)
	}
	return rc.enc
}

// encodeStage encodes one full column stage and retains or spills it.
func (rc *Recorder) encodeStage(enc *chunkEncoder, st *RecordColumns) {
	start := time.Now()
	enc.buf = enc.encodeCols(enc.buf[:0], st, true)
	rc.appendEncoded(enc.buf, st.N)
	rc.encodeNanos.Add(int64(time.Since(start)))
}

// drainEncode blocks until every stage handed to the encode-ahead pipeline
// has been encoded, so an unsealed replay (or the seal itself) observes all
// flushed chunks. No-op on the sequential path.
func (rc *Recorder) drainEncode() {
	if rc.ahead != nil {
		rc.ahead.drain()
	}
}

// encoderPool recycles chunkEncoders — their per-column scratch and the
// encode output buffer — across Recorders. Encoding into pooled scratch and
// copying out exactly the retained bytes (nothing at all for spilled
// chunks) is what keeps the recording path's steady-state allocation to one
// right-sized chunk copy, measured by BenchmarkVMStepsRecording.
var encoderPool = sync.Pool{New: func() any { return new(chunkEncoder) }}

// flushStaged transposes the scalar staging buffer into one encoded chunk —
// the per-record reference encoder of scalar-record mode.
func (rc *Recorder) flushStaged() {
	start := time.Now()
	enc := rc.encoder()
	enc.buf = enc.encode(enc.buf[:0], rc.staged, rc.nFlushed, true)
	rc.nFlushed += int64(len(rc.staged))
	rc.appendEncoded(enc.buf, len(rc.staged))
	rc.encodeNanos.Add(int64(time.Since(start)))
	rc.staged = rc.staged[:0]
}

// appendEncoded retains one encoded chunk resident — or spills it when past
// the memory budget — and appends it to the chunk index. Called inline or
// from the encode-ahead goroutine, always in stream order; mu makes the
// bookkeeping safe against concurrent accessor reads while the pipeline is
// live.
func (rc *Recorder) appendEncoded(data []byte, n int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	c := rchunk{size: int32(len(data)), n: int32(n)}
	rc.encodedBytes += int64(len(data))
	if int64(len(data)) > rc.maxChunkBytes {
		rc.maxChunkBytes = int64(len(data))
	}
	if rc.memBudget > 0 && rc.residentBytes+int64(len(data)) > rc.memBudget {
		if rc.spill == nil {
			sf, err := newSpillFile()
			if err != nil {
				panic("trace: create spill file: " + err.Error())
			}
			rc.spill = sf
		}
		off, err := rc.spill.write(data)
		if err != nil {
			panic("trace: write spill chunk: " + err.Error())
		}
		c.off = off
		rc.spilledChunks++
	} else {
		retained := make([]byte, len(data))
		copy(retained, data)
		c.data = retained
		rc.residentBytes += int64(len(data))
	}
	rc.chunks = append(rc.chunks, c)
	rc.chunksEncoded++
}

// tailRecords returns the partially filled staging tail as records: the
// scalar staging buffer directly, or the column stage materialized into
// pooled scratch (valid until the next Consume or flush). Sealed recorders
// have no tail.
func (rc *Recorder) tailRecords() []Record {
	if rc.cols == nil || rc.cols.N == 0 {
		return rc.staged
	}
	if rc.tailSlab == nil {
		rc.tailSlab = getSlab()
	}
	out := rc.tailSlab.recs[:rc.cols.N]
	rc.cols.materialize(out)
	return out
}

// walkChunks streams every flushed chunk's encoded bytes through fn in
// record order, reading spilled chunks back sequentially through a
// double-buffered prefetcher so decode of chunk k overlaps the read of
// chunk k+1. fn must fully consume data before returning (the prefetch
// buffers are recycled). The staging tail is NOT walked — callers feed
// rc.staged directly after the walk.
func (rc *Recorder) walkChunks(fn func(data []byte, n int, firstSeq int64)) {
	// The prefetch goroutine only helps when another CPU can run it; on a
	// single-core machine it is pure scheduling overhead, so read inline.
	var pf *prefetcher
	var buf []byte
	if rc.spilledChunks > 0 && runtime.GOMAXPROCS(0) > 1 {
		pf = startPrefetch(rc.spill, rc.chunks)
		defer pf.stop()
	}
	firstSeq := int64(0)
	for i := range rc.chunks {
		c := &rc.chunks[i]
		data := c.data
		if data == nil {
			if pf != nil {
				data = pf.next()
			} else {
				if cap(buf) < int(c.size) {
					buf = make([]byte, c.size)
				}
				buf = buf[:c.size]
				if _, err := rc.spill.f.ReadAt(buf, c.off); err != nil {
					panic(fmt.Sprintf("trace: read spilled chunk: %v", err))
				}
				data = buf
			}
		}
		fn(data, int(c.n), firstSeq)
		if pf != nil && c.data == nil {
			pf.recycle(data)
		}
		firstSeq += int64(c.n)
	}
}

// mustDecodeChunk batch-decodes a chunk the Recorder encoded itself into
// out; failure would mean memory or spill-file corruption.
func mustDecodeChunk(out []Record, data []byte, firstSeq int64) int {
	n, err := decodeChunk(out, data, firstSeq, true, false)
	if err != nil {
		panic("trace: corrupt recorded chunk: " + err.Error())
	}
	return n
}

// recSlab is one pooled chunk-sized Record buffer plus the per-buffer
// scratch for reading a spilled chunk back from disk. The spill scratch
// lives on the buffer (not the decode lane) because the pipelined walk
// reads chunk i+lanes while the consumer still holds chunk i — a
// lane-shared buffer would be overwritten under the consumer's feet. That
// hazard is theoretical for fully materialized Record slabs but real for
// batches, whose byte columns alias the encoded bytes; keeping the scratch
// per-buffer makes both walks safe by construction.
type recSlab struct {
	recs []Record
	n    int
	raw  []byte
}

// spillBuf returns the slab-owned scratch for reading one spilled chunk.
func (s *recSlab) spillBuf(size int) []byte {
	if cap(s.raw) < size {
		s.raw = make([]byte, size)
	}
	s.raw = s.raw[:size]
	return s.raw
}

// slabPool recycles chunk-sized decode slabs across replay passes. A slab is
// ~0.9 MiB, so per-pass allocation would dominate short replays; the pool
// keeps steady-state replay allocation-free.
var slabPool = sync.Pool{New: func() any {
	return &recSlab{recs: make([]Record, recorderChunkSize)}
}}

func getSlab() *recSlab  { return slabPool.Get().(*recSlab) }
func putSlab(s *recSlab) { slabPool.Put(s) }

// decodeLanes picks the decode-ahead width for a replay pass: one lane per
// spare CPU up to six (the chunk transpose costs ~16 ns/record against
// ~3 ns/record of consumer dispatch, so walkonly replay needs five-plus
// lanes before the decode fully hides; heavier consumers saturate sooner),
// zero — the inline sequential path — when the machine is single-core or
// the trace too small to pipeline.
func decodeLanes(nchunks int) int {
	w := runtime.GOMAXPROCS(0) - 1
	if w > 6 {
		w = 6
	}
	if w > nchunks-1 {
		w = nchunks - 1
	}
	if w < 1 {
		return 0
	}
	return w
}

// walkPipe streams every flushed chunk through deliver as a decoded buffer
// (a Record slab or a column Batch), in record order. On multi-core
// machines the decode runs ahead of the consumer on a small pool of worker
// lanes — chunk i is decoded on lane i%lanes while the consumer walks
// earlier buffers, so the per-record cost of the consume loop approaches
// the raw in-memory walk and the decode hides behind it. Each lane owns two
// buffers (decode one while the consumer holds the other); delivery is
// strictly round-robin, which keeps record order without any reordering
// buffer. Spilled chunks are read back by the lane that decodes them
// (positional reads are independent) into buffer-owned scratch, replacing
// the sequential prefetcher on that path. Single-core or tiny traces fall
// back to inline decode through walkChunks. The buffer passed to deliver is
// valid only until deliver returns — every element is rewritten on the next
// decode.
func walkPipe[B interface{ spillBuf(size int) []byte }](
	rc *Recorder,
	get func() B, put func(B),
	decode func(buf B, data []byte, firstSeq int64),
	deliver func(buf B),
) {
	nchunks := len(rc.chunks)
	if nchunks == 0 {
		return
	}
	lanes := decodeLanes(nchunks)
	if lanes == 0 {
		buf := get()
		defer put(buf)
		rc.walkChunks(func(data []byte, n int, firstSeq int64) {
			decode(buf, data, firstSeq)
			deliver(buf)
		})
		return
	}

	firstSeqs := make([]int64, nchunks)
	var fs int64
	for i := range rc.chunks {
		firstSeqs[i] = fs
		fs += int64(rc.chunks[i].n)
	}

	type lane struct {
		out  chan B // decoded buffers, in this lane's chunk order
		free chan B // buffers returned by the consumer
	}
	ls := make([]lane, lanes)
	done := make(chan struct{})
	panics := make(chan any, lanes)
	var wg sync.WaitGroup
	for w := range ls {
		ls[w] = lane{out: make(chan B, 1), free: make(chan B, 2)}
		ls[w].free <- get()
		ls[w].free <- get()
		wg.Add(1)
		go func(w int, ln lane) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
					close(ln.out)
				}
			}()
			for i := w; i < nchunks; i += lanes {
				var buf B
				select {
				case buf = <-ln.free:
				case <-done:
					return
				}
				c := &rc.chunks[i]
				data := c.data
				if data == nil {
					sb := buf.spillBuf(int(c.size))
					if _, err := rc.spill.f.ReadAt(sb, c.off); err != nil {
						panic(fmt.Sprintf("trace: read spilled chunk: %v", err))
					}
					data = sb
				}
				decode(buf, data, firstSeqs[i])
				select {
				case ln.out <- buf:
				case <-done:
					return
				}
			}
			close(ln.out)
		}(w, ls[w])
	}
	defer func() {
		close(done)
		wg.Wait()
		// Return every buffer still parked in a lane to the pool. A lane
		// that aborted mid-decode keeps its buffer; the GC reclaims it.
		for _, ln := range ls {
			for {
				select {
				case b := <-ln.free:
					put(b)
					continue
				default:
				}
				select {
				case b, ok := <-ln.out:
					if ok {
						put(b)
						continue
					}
				default:
				}
				break
			}
		}
	}()
	for i := 0; i < nchunks; i++ {
		ln := ls[i%lanes]
		buf, ok := <-ln.out
		if !ok {
			panic(<-panics)
		}
		deliver(buf)
		ln.free <- buf
	}
}

// walkSlabs streams every flushed chunk through fn as a decoded []Record
// slab, in record order (see walkPipe for the pipelining). fn may mutate
// the slab — ReplayDirs patches directives in place.
func (rc *Recorder) walkSlabs(fn func(recs []Record)) {
	walkPipe(rc, getSlab, putSlab,
		func(s *recSlab, data []byte, firstSeq int64) {
			s.n = mustDecodeChunk(s.recs, data, firstSeq)
		},
		func(s *recSlab) { fn(s.recs[:s.n]) })
}

// walkBatches streams every flushed chunk through fn as decoded column
// Batches, in record order (see walkPipe for the pipelining). Each batch is
// valid only until fn returns; its byte columns alias either the immutable
// resident chunk or the batch-owned spill scratch, so concurrent replays
// never share mutable state. On the inline single-core path chunks are
// delivered as cache-resident sub-batches (see streamBatch); lane-decoded
// chunks arrive whole, one batch per chunk.
func (rc *Recorder) walkBatches(fn func(b *Batch)) {
	if decodeLanes(len(rc.chunks)) == 0 {
		b := getBatch()
		defer putBatch(b)
		rc.walkChunks(func(data []byte, n int, firstSeq int64) {
			mustStreamBatch(b, data, firstSeq, fn)
		})
		return
	}
	walkPipe(rc, getBatch, putBatch,
		func(b *Batch, data []byte, firstSeq int64) {
			mustDecodeBatch(b, data, firstSeq)
		},
		fn)
}

// batchable returns the consumers as batch kernels when the batch path is
// enabled and every consumer supports it, nil otherwise (mixed fan-outs
// fall back to the scalar walk so all consumers observe one decode).
func (rc *Recorder) batchable(consumers []Consumer) []BatchConsumer {
	if rc.scalarReplay || len(consumers) == 0 {
		return nil
	}
	bcs := make([]BatchConsumer, len(consumers))
	for i, c := range consumers {
		bc, ok := c.(BatchConsumer)
		if !ok {
			return nil
		}
		bcs[i] = bc
	}
	return bcs
}

// Replay feeds the recorded stream to the consumers in order. Consumers
// implementing BatchConsumer (all of them, or none — mixed sets fall back)
// receive whole decoded chunks as column batches; otherwise chunks are
// batch-decoded into scratch slabs (running ahead of the consumer on
// multi-core machines, see walkPipe) and handed out record by record under
// the live-run contract: the record is only valid for the duration of the
// Consume call, and consumers must not modify it.
func (rc *Recorder) Replay(consumers ...Consumer) {
	rc.passes.Add(1)
	rc.drainEncode()
	staged := rc.tailRecords()
	if bcs := rc.batchable(consumers); bcs != nil {
		rc.walkBatches(func(b *Batch) {
			for _, c := range bcs {
				c.ConsumeBatch(b)
			}
		})
		for i := range staged {
			for _, c := range consumers {
				c.Consume(&staged[i])
			}
		}
		return
	}
	if len(consumers) == 1 {
		// The common fan-out, with the consumer interface loaded once.
		c := consumers[0]
		rc.walkSlabs(func(recs []Record) {
			for i := range recs {
				c.Consume(&recs[i])
			}
		})
		for i := range staged {
			c.Consume(&staged[i])
		}
		return
	}
	rc.walkSlabs(func(recs []Record) {
		for i := range recs {
			for _, c := range consumers {
				c.Consume(&recs[i])
			}
		}
	})
	for i := range staged {
		for _, c := range consumers {
			c.Consume(&staged[i])
		}
	}
}

// ReplayDirs replays the recorded stream with the directive of each record
// overridden by dirs[Addr] (DirNone for addresses outside dirs). Annotation
// changes only the directive bits of a program — no code motion — so
// replaying a plain-program trace under an annotated program's directives is
// bit-identical to re-executing the annotated program. Each record is
// patched in the decode scratch; the recorded chunks are never modified,
// keeping concurrent replays safe.
func (rc *Recorder) ReplayDirs(dirs []isa.Directive, consumers ...Consumer) {
	rc.passes.Add(1)
	rc.drainEncode()
	staged := rc.tailRecords()
	if bcs := rc.batchable(consumers); bcs != nil {
		rc.walkBatches(func(b *Batch) {
			// The Dir column is batch-owned decode scratch (rewritten on
			// the next decode), so the patch writes it in place.
			patchDirs(b.Dir, b.Addr, dirs)
			for _, c := range bcs {
				c.ConsumeBatch(b)
			}
		})
		var rec Record
		for i := range staged {
			rec = staged[i]
			if a := rec.Addr; a >= 0 && a < int64(len(dirs)) {
				rec.Dir = dirs[a]
			} else {
				rec.Dir = isa.DirNone
			}
			for _, c := range consumers {
				c.Consume(&rec)
			}
		}
		return
	}
	var single Consumer
	if len(consumers) == 1 {
		single = consumers[0]
	}
	patch := func(r *Record) {
		if a := r.Addr; a >= 0 && a < int64(len(dirs)) {
			r.Dir = dirs[a]
		} else {
			r.Dir = isa.DirNone
		}
	}
	// The directive is patched in the decode slab — scratch owned by this
	// pass — so the recorded chunks are never modified and concurrent
	// replays stay safe.
	rc.walkSlabs(func(recs []Record) {
		for i := range recs {
			r := &recs[i]
			patch(r)
			if single != nil {
				single.Consume(r)
			} else {
				for _, c := range consumers {
					c.Consume(r)
				}
			}
		}
	})
	var rec Record
	for i := range staged {
		rec = staged[i]
		patch(&rec)
		if single != nil {
			single.Consume(&rec)
		} else {
			for _, c := range consumers {
				c.Consume(&rec)
			}
		}
	}
}

// DirsOf extracts the per-address directive table of a text segment, the
// input ReplayDirs expects. It lives here (rather than in the program
// package) so replay callers need only the text slice.
func DirsOf(text []isa.Instruction) []isa.Directive {
	dirs := make([]isa.Directive, len(text))
	for i := range text {
		dirs[i] = text[i].Dir
	}
	return dirs
}
