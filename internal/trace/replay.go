package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/isa"
)

// This file implements the record-once/replay-many trace cache. A Recorder
// captures a dynamic instruction stream into columnar compressed chunks;
// Replay feeds it back to any number of consumers, bit-identically to the
// live run, without re-interpreting the program. The experiment drivers use
// it to run the evaluation input once per benchmark and replay the recorded
// stream for every threshold and prediction-engine configuration.
//
// Storage is structure-of-arrays: records are staged in a plain buffer one
// chunk at a time and transposed into the packed columnar encoding of
// codec.go when the chunk fills (~10 bytes/record against the 56-byte
// Record struct). Replay runs a decode-into-scratch hot loop that
// materializes one Record per iteration, so consumers observe exactly the
// live-run contract and never touch the encoded form. When a resident-bytes
// budget is set, encoded chunks past the budget spill to an anonymous temp
// file and stream back in sequential order during replay through a
// double-buffered prefetcher (spill.go), so traces larger than RAM replay
// at near-resident speed.

// recorderChunkSize is the number of records per storage chunk: 16384
// records stage into ~0.9 MiB of Record structs and encode into roughly
// 100–300 KiB, a comfortable unit for both cache-resident decoding and
// sequential spill I/O.
const recorderChunkSize = 1 << 14

// recordMemBytes is the in-memory size of one decoded Record, the AoS
// footprint the columnar encoding is measured against.
const recordMemBytes = int64(unsafe.Sizeof(Record{}))

// rchunk is one encoded chunk: resident (data set) or spilled (data nil,
// off/size locating the encoding in the spill file).
type rchunk struct {
	data []byte
	off  int64
	size int32
	n    int32
}

// Recorder is a Consumer that captures the stream for later replay.
// Recording is single-threaded (one producer), but a finished Recorder is
// immutable and Replay/ReplayDirs/MultiEval may be called concurrently from
// multiple goroutines. Owners that share a Recorder across goroutines (the
// experiments context, the vpserve trace cache) must Seal it first: sealing
// marks recording complete, turns any further Consume into a panic, and
// documents the immutability the concurrent replays rely on. Replay hands
// records out by pointer under a strict read-only, duration-of-the-call
// contract (the same contract as a live run); the -race stress tests in
// internal/experiments drive every replay path from many goroutines to
// catch any consumer that violates it.
type Recorder struct {
	staged     []Record // current partially filled chunk, plain AoS
	stagedSlab *recSlab // pooled backing storage of staged; returned at Seal
	enc        *chunkEncoder
	chunks     []rchunk
	n          int64

	memBudget     int64 // resident encoded-bytes budget; <=0 = fully resident
	residentBytes int64 // encoded bytes currently held in memory
	encodedBytes  int64 // encoded bytes total (resident + spilled)
	maxChunkBytes int64 // largest encoded chunk, the unit of spill readback
	spilledChunks int64
	spill         *spillFile

	scalarReplay bool // force the per-record Consumer path (reference implementation)
	sealed       bool
	passes       atomic.Int64 // full replay passes over the buffer, for amortization accounting
}

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetMemBudget bounds the encoded trace bytes the Recorder keeps resident in
// memory; chunks encoded past the budget spill to a temporary file (deleted
// on creation, so it can never outlive the process) and stream back during
// replay. A budget ≤ 0 keeps everything resident. The budget governs chunks
// encoded after the call, so set it before recording; the ~0.9 MiB staging
// buffer for the chunk being filled is not counted against it.
func (rc *Recorder) SetMemBudget(bytes int64) { rc.memBudget = bytes }

// SetScalarReplay forces every replay pass onto the scalar per-record
// Consumer path even for consumers that implement BatchConsumer. The batch
// column kernels are the default; the scalar loop is the reference
// implementation the batch path is differentially tested against, and this
// switch is the escape hatch the -scalar-replay flags of vpreport and
// vpserve expose. Set it before the Recorder is shared; replays only read it.
func (rc *Recorder) SetScalarReplay(scalar bool) { rc.scalarReplay = scalar }

// Passes reports how many full replay passes have walked the recorded
// buffer (Replay, ReplayDirs and MultiEval each count one, however many
// consumers they fed). The single-pass sweep tests and the vpserve
// amortization metrics read it.
func (rc *Recorder) Passes() int64 { return rc.passes.Load() }

// Len returns the number of recorded records.
func (rc *Recorder) Len() int64 { return rc.n }

// Bytes returns the approximate resident in-memory size of the recorded
// trace: the encoded chunks still held in memory plus the staging buffer.
// Spilled chunks do not count.
func (rc *Recorder) Bytes() int64 {
	return rc.residentBytes + int64(len(rc.staged))*recordMemBytes
}

// EncodedBytes returns the total encoded size of all flushed chunks,
// resident and spilled. Records still in the staging buffer (at most one
// partial chunk; none once sealed) are not yet encoded.
func (rc *Recorder) EncodedBytes() int64 { return rc.encodedBytes }

// BytesResident returns the encoded bytes currently held in memory.
func (rc *Recorder) BytesResident() int64 { return rc.residentBytes }

// ReplayResidentBytes returns the peak in-memory working set of one replay
// pass over the flushed chunks: the resident encoded bytes plus, when any
// chunk has spilled, two chunk-sized read buffers (readback is double
// buffered — one chunk decoding while the next is fetched). This is the
// honest per-pass memory figure for a spilled trace, where BytesResident
// alone would report a misleading zero.
func (rc *Recorder) ReplayResidentBytes() int64 {
	b := rc.residentBytes
	if rc.spilledChunks > 0 {
		b += 2 * rc.maxChunkBytes
	}
	return b
}

// SpilledChunks returns how many chunks were written to the spill file.
func (rc *Recorder) SpilledChunks() int64 { return rc.spilledChunks }

// Seal marks recording complete: the staging buffer is encoded and released,
// further Consume panics, and the Recorder may be replayed concurrently from
// any number of goroutines. Sealing is idempotent. The caller must establish
// a happens-before edge between Seal and the first concurrent Replay
// (publishing the Recorder through a mutex-guarded cache, a channel, or
// sync.Once all qualify).
func (rc *Recorder) Seal() {
	if rc.sealed {
		return
	}
	if len(rc.staged) > 0 {
		rc.flushStaged()
	}
	rc.staged = nil
	if rc.stagedSlab != nil {
		putSlab(rc.stagedSlab)
		rc.stagedSlab = nil
	}
	if rc.enc != nil {
		encoderPool.Put(rc.enc)
		rc.enc = nil
	}
	rc.sealed = true
}

// Sealed reports whether the Recorder has been sealed.
func (rc *Recorder) Sealed() bool { return rc.sealed }

// Close releases the spill file, if any. Replays must not be in flight.
// Close is optional — the spill file is unlinked at creation and the
// process's file-descriptor finalizer reclaims it when the Recorder is
// garbage-collected — but deterministic for tests and long-lived owners.
func (rc *Recorder) Close() error {
	if rc.spill == nil {
		return nil
	}
	err := rc.spill.close()
	rc.spill = nil
	return err
}

// Consume implements Consumer by appending a copy of r.
func (rc *Recorder) Consume(r *Record) {
	if rc.sealed {
		panic("trace: Consume on a sealed Recorder (recording after publication)")
	}
	if rc.staged == nil {
		// The ~0.9 MiB staging buffer comes from the replay slab pool (same
		// shape, same lifetime discipline) and returns there at Seal, so
		// recording a trace does not allocate it fresh per Recorder.
		rc.stagedSlab = getSlab()
		rc.staged = rc.stagedSlab.recs[:0]
	}
	rc.staged = append(rc.staged, *r)
	rc.n++
	if len(rc.staged) == recorderChunkSize {
		rc.flushStaged()
	}
}

// encoderPool recycles chunkEncoders — their per-column scratch and the
// encode output buffer — across Recorders. Encoding into pooled scratch and
// copying out exactly the retained bytes (nothing at all for spilled
// chunks) is what keeps the recording path's steady-state allocation to one
// right-sized chunk copy, measured by BenchmarkVMStepsRecording.
var encoderPool = sync.Pool{New: func() any { return new(chunkEncoder) }}

// flushStaged transposes the staging buffer into one encoded chunk,
// retaining it resident or spilling it when past the memory budget.
func (rc *Recorder) flushStaged() {
	firstSeq := rc.n - int64(len(rc.staged))
	if rc.enc == nil {
		rc.enc = encoderPool.Get().(*chunkEncoder)
	}
	rc.enc.buf = rc.enc.encode(rc.enc.buf[:0], rc.staged, firstSeq, true)
	data := rc.enc.buf
	c := rchunk{size: int32(len(data)), n: int32(len(rc.staged))}
	rc.encodedBytes += int64(len(data))
	if int64(len(data)) > rc.maxChunkBytes {
		rc.maxChunkBytes = int64(len(data))
	}
	if rc.memBudget > 0 && rc.residentBytes+int64(len(data)) > rc.memBudget {
		if rc.spill == nil {
			sf, err := newSpillFile()
			if err != nil {
				panic("trace: create spill file: " + err.Error())
			}
			rc.spill = sf
		}
		off, err := rc.spill.write(data)
		if err != nil {
			panic("trace: write spill chunk: " + err.Error())
		}
		c.off = off
		rc.spilledChunks++
	} else {
		retained := make([]byte, len(data))
		copy(retained, data)
		c.data = retained
		rc.residentBytes += int64(len(data))
	}
	rc.chunks = append(rc.chunks, c)
	rc.staged = rc.staged[:0]
}

// walkChunks streams every flushed chunk's encoded bytes through fn in
// record order, reading spilled chunks back sequentially through a
// double-buffered prefetcher so decode of chunk k overlaps the read of
// chunk k+1. fn must fully consume data before returning (the prefetch
// buffers are recycled). The staging tail is NOT walked — callers feed
// rc.staged directly after the walk.
func (rc *Recorder) walkChunks(fn func(data []byte, n int, firstSeq int64)) {
	// The prefetch goroutine only helps when another CPU can run it; on a
	// single-core machine it is pure scheduling overhead, so read inline.
	var pf *prefetcher
	var buf []byte
	if rc.spilledChunks > 0 && runtime.GOMAXPROCS(0) > 1 {
		pf = startPrefetch(rc.spill, rc.chunks)
		defer pf.stop()
	}
	firstSeq := int64(0)
	for i := range rc.chunks {
		c := &rc.chunks[i]
		data := c.data
		if data == nil {
			if pf != nil {
				data = pf.next()
			} else {
				if cap(buf) < int(c.size) {
					buf = make([]byte, c.size)
				}
				buf = buf[:c.size]
				if _, err := rc.spill.f.ReadAt(buf, c.off); err != nil {
					panic(fmt.Sprintf("trace: read spilled chunk: %v", err))
				}
				data = buf
			}
		}
		fn(data, int(c.n), firstSeq)
		if pf != nil && c.data == nil {
			pf.recycle(data)
		}
		firstSeq += int64(c.n)
	}
}

// mustDecodeChunk batch-decodes a chunk the Recorder encoded itself into
// out; failure would mean memory or spill-file corruption.
func mustDecodeChunk(out []Record, data []byte, firstSeq int64) int {
	n, err := decodeChunk(out, data, firstSeq, true, false)
	if err != nil {
		panic("trace: corrupt recorded chunk: " + err.Error())
	}
	return n
}

// recSlab is one pooled chunk-sized Record buffer plus the per-buffer
// scratch for reading a spilled chunk back from disk. The spill scratch
// lives on the buffer (not the decode lane) because the pipelined walk
// reads chunk i+lanes while the consumer still holds chunk i — a
// lane-shared buffer would be overwritten under the consumer's feet. That
// hazard is theoretical for fully materialized Record slabs but real for
// batches, whose byte columns alias the encoded bytes; keeping the scratch
// per-buffer makes both walks safe by construction.
type recSlab struct {
	recs []Record
	n    int
	raw  []byte
}

// spillBuf returns the slab-owned scratch for reading one spilled chunk.
func (s *recSlab) spillBuf(size int) []byte {
	if cap(s.raw) < size {
		s.raw = make([]byte, size)
	}
	s.raw = s.raw[:size]
	return s.raw
}

// slabPool recycles chunk-sized decode slabs across replay passes. A slab is
// ~0.9 MiB, so per-pass allocation would dominate short replays; the pool
// keeps steady-state replay allocation-free.
var slabPool = sync.Pool{New: func() any {
	return &recSlab{recs: make([]Record, recorderChunkSize)}
}}

func getSlab() *recSlab  { return slabPool.Get().(*recSlab) }
func putSlab(s *recSlab) { slabPool.Put(s) }

// decodeLanes picks the decode-ahead width for a replay pass: one lane per
// spare CPU up to six (the chunk transpose costs ~16 ns/record against
// ~3 ns/record of consumer dispatch, so walkonly replay needs five-plus
// lanes before the decode fully hides; heavier consumers saturate sooner),
// zero — the inline sequential path — when the machine is single-core or
// the trace too small to pipeline.
func decodeLanes(nchunks int) int {
	w := runtime.GOMAXPROCS(0) - 1
	if w > 6 {
		w = 6
	}
	if w > nchunks-1 {
		w = nchunks - 1
	}
	if w < 1 {
		return 0
	}
	return w
}

// walkPipe streams every flushed chunk through deliver as a decoded buffer
// (a Record slab or a column Batch), in record order. On multi-core
// machines the decode runs ahead of the consumer on a small pool of worker
// lanes — chunk i is decoded on lane i%lanes while the consumer walks
// earlier buffers, so the per-record cost of the consume loop approaches
// the raw in-memory walk and the decode hides behind it. Each lane owns two
// buffers (decode one while the consumer holds the other); delivery is
// strictly round-robin, which keeps record order without any reordering
// buffer. Spilled chunks are read back by the lane that decodes them
// (positional reads are independent) into buffer-owned scratch, replacing
// the sequential prefetcher on that path. Single-core or tiny traces fall
// back to inline decode through walkChunks. The buffer passed to deliver is
// valid only until deliver returns — every element is rewritten on the next
// decode.
func walkPipe[B interface{ spillBuf(size int) []byte }](
	rc *Recorder,
	get func() B, put func(B),
	decode func(buf B, data []byte, firstSeq int64),
	deliver func(buf B),
) {
	nchunks := len(rc.chunks)
	if nchunks == 0 {
		return
	}
	lanes := decodeLanes(nchunks)
	if lanes == 0 {
		buf := get()
		defer put(buf)
		rc.walkChunks(func(data []byte, n int, firstSeq int64) {
			decode(buf, data, firstSeq)
			deliver(buf)
		})
		return
	}

	firstSeqs := make([]int64, nchunks)
	var fs int64
	for i := range rc.chunks {
		firstSeqs[i] = fs
		fs += int64(rc.chunks[i].n)
	}

	type lane struct {
		out  chan B // decoded buffers, in this lane's chunk order
		free chan B // buffers returned by the consumer
	}
	ls := make([]lane, lanes)
	done := make(chan struct{})
	panics := make(chan any, lanes)
	var wg sync.WaitGroup
	for w := range ls {
		ls[w] = lane{out: make(chan B, 1), free: make(chan B, 2)}
		ls[w].free <- get()
		ls[w].free <- get()
		wg.Add(1)
		go func(w int, ln lane) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
					close(ln.out)
				}
			}()
			for i := w; i < nchunks; i += lanes {
				var buf B
				select {
				case buf = <-ln.free:
				case <-done:
					return
				}
				c := &rc.chunks[i]
				data := c.data
				if data == nil {
					sb := buf.spillBuf(int(c.size))
					if _, err := rc.spill.f.ReadAt(sb, c.off); err != nil {
						panic(fmt.Sprintf("trace: read spilled chunk: %v", err))
					}
					data = sb
				}
				decode(buf, data, firstSeqs[i])
				select {
				case ln.out <- buf:
				case <-done:
					return
				}
			}
			close(ln.out)
		}(w, ls[w])
	}
	defer func() {
		close(done)
		wg.Wait()
		// Return every buffer still parked in a lane to the pool. A lane
		// that aborted mid-decode keeps its buffer; the GC reclaims it.
		for _, ln := range ls {
			for {
				select {
				case b := <-ln.free:
					put(b)
					continue
				default:
				}
				select {
				case b, ok := <-ln.out:
					if ok {
						put(b)
						continue
					}
				default:
				}
				break
			}
		}
	}()
	for i := 0; i < nchunks; i++ {
		ln := ls[i%lanes]
		buf, ok := <-ln.out
		if !ok {
			panic(<-panics)
		}
		deliver(buf)
		ln.free <- buf
	}
}

// walkSlabs streams every flushed chunk through fn as a decoded []Record
// slab, in record order (see walkPipe for the pipelining). fn may mutate
// the slab — ReplayDirs patches directives in place.
func (rc *Recorder) walkSlabs(fn func(recs []Record)) {
	walkPipe(rc, getSlab, putSlab,
		func(s *recSlab, data []byte, firstSeq int64) {
			s.n = mustDecodeChunk(s.recs, data, firstSeq)
		},
		func(s *recSlab) { fn(s.recs[:s.n]) })
}

// walkBatches streams every flushed chunk through fn as decoded column
// Batches, in record order (see walkPipe for the pipelining). Each batch is
// valid only until fn returns; its byte columns alias either the immutable
// resident chunk or the batch-owned spill scratch, so concurrent replays
// never share mutable state. On the inline single-core path chunks are
// delivered as cache-resident sub-batches (see streamBatch); lane-decoded
// chunks arrive whole, one batch per chunk.
func (rc *Recorder) walkBatches(fn func(b *Batch)) {
	if decodeLanes(len(rc.chunks)) == 0 {
		b := getBatch()
		defer putBatch(b)
		rc.walkChunks(func(data []byte, n int, firstSeq int64) {
			mustStreamBatch(b, data, firstSeq, fn)
		})
		return
	}
	walkPipe(rc, getBatch, putBatch,
		func(b *Batch, data []byte, firstSeq int64) {
			mustDecodeBatch(b, data, firstSeq)
		},
		fn)
}

// batchable returns the consumers as batch kernels when the batch path is
// enabled and every consumer supports it, nil otherwise (mixed fan-outs
// fall back to the scalar walk so all consumers observe one decode).
func (rc *Recorder) batchable(consumers []Consumer) []BatchConsumer {
	if rc.scalarReplay || len(consumers) == 0 {
		return nil
	}
	bcs := make([]BatchConsumer, len(consumers))
	for i, c := range consumers {
		bc, ok := c.(BatchConsumer)
		if !ok {
			return nil
		}
		bcs[i] = bc
	}
	return bcs
}

// Replay feeds the recorded stream to the consumers in order. Consumers
// implementing BatchConsumer (all of them, or none — mixed sets fall back)
// receive whole decoded chunks as column batches; otherwise chunks are
// batch-decoded into scratch slabs (running ahead of the consumer on
// multi-core machines, see walkPipe) and handed out record by record under
// the live-run contract: the record is only valid for the duration of the
// Consume call, and consumers must not modify it.
func (rc *Recorder) Replay(consumers ...Consumer) {
	rc.passes.Add(1)
	if bcs := rc.batchable(consumers); bcs != nil {
		rc.walkBatches(func(b *Batch) {
			for _, c := range bcs {
				c.ConsumeBatch(b)
			}
		})
		for i := range rc.staged {
			for _, c := range consumers {
				c.Consume(&rc.staged[i])
			}
		}
		return
	}
	if len(consumers) == 1 {
		// The common fan-out, with the consumer interface loaded once.
		c := consumers[0]
		rc.walkSlabs(func(recs []Record) {
			for i := range recs {
				c.Consume(&recs[i])
			}
		})
		for i := range rc.staged {
			c.Consume(&rc.staged[i])
		}
		return
	}
	rc.walkSlabs(func(recs []Record) {
		for i := range recs {
			for _, c := range consumers {
				c.Consume(&recs[i])
			}
		}
	})
	for i := range rc.staged {
		for _, c := range consumers {
			c.Consume(&rc.staged[i])
		}
	}
}

// ReplayDirs replays the recorded stream with the directive of each record
// overridden by dirs[Addr] (DirNone for addresses outside dirs). Annotation
// changes only the directive bits of a program — no code motion — so
// replaying a plain-program trace under an annotated program's directives is
// bit-identical to re-executing the annotated program. Each record is
// patched in the decode scratch; the recorded chunks are never modified,
// keeping concurrent replays safe.
func (rc *Recorder) ReplayDirs(dirs []isa.Directive, consumers ...Consumer) {
	rc.passes.Add(1)
	if bcs := rc.batchable(consumers); bcs != nil {
		rc.walkBatches(func(b *Batch) {
			// The Dir column is batch-owned decode scratch (rewritten on
			// the next decode), so the patch writes it in place.
			patchDirs(b.Dir, b.Addr, dirs)
			for _, c := range bcs {
				c.ConsumeBatch(b)
			}
		})
		var rec Record
		for i := range rc.staged {
			rec = rc.staged[i]
			if a := rec.Addr; a >= 0 && a < int64(len(dirs)) {
				rec.Dir = dirs[a]
			} else {
				rec.Dir = isa.DirNone
			}
			for _, c := range consumers {
				c.Consume(&rec)
			}
		}
		return
	}
	var single Consumer
	if len(consumers) == 1 {
		single = consumers[0]
	}
	patch := func(r *Record) {
		if a := r.Addr; a >= 0 && a < int64(len(dirs)) {
			r.Dir = dirs[a]
		} else {
			r.Dir = isa.DirNone
		}
	}
	// The directive is patched in the decode slab — scratch owned by this
	// pass — so the recorded chunks are never modified and concurrent
	// replays stay safe.
	rc.walkSlabs(func(recs []Record) {
		for i := range recs {
			r := &recs[i]
			patch(r)
			if single != nil {
				single.Consume(r)
			} else {
				for _, c := range consumers {
					c.Consume(r)
				}
			}
		}
	})
	var rec Record
	for i := range rc.staged {
		rec = rc.staged[i]
		patch(&rec)
		if single != nil {
			single.Consume(&rec)
		} else {
			for _, c := range consumers {
				c.Consume(&rec)
			}
		}
	}
}

// DirsOf extracts the per-address directive table of a text segment, the
// input ReplayDirs expects. It lives here (rather than in the program
// package) so replay callers need only the text slice.
func DirsOf(text []isa.Instruction) []isa.Directive {
	dirs := make([]isa.Directive, len(text))
	for i := range text {
		dirs[i] = text[i].Dir
	}
	return dirs
}
