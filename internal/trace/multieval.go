package trace

import "repro/internal/isa"

// This file implements single-pass multi-configuration trace evaluation.
// The Section 5 experiment drivers sweep one recorded trace across many
// predictor/classifier configurations — the FSM baseline plus one
// profile-annotated configuration per accuracy threshold. Replaying the
// trace once per configuration re-reads the whole multi-megabyte buffer T
// times; MultiEval walks the buffer exactly once and fans every record out
// to all configurations, turning the sweep from O(configs × replay) into
// O(replay + configs × table-update). Each configuration still observes
// exactly the record sequence its own ReplayDirs/Replay call would have
// produced, so per-configuration results are bit-identical to separate
// replays (the equivalence is asserted by TestMultiEvalMatchesSeparateReplays).

// EvalConfig is one independent evaluation configuration of a MultiEval
// pass: a consumer plus the per-address directive table to patch into each
// record before the consumer sees it. A nil Dirs replays the plain recorded
// stream (the FSM baseline and no-prediction ILP machines); a non-nil Dirs
// reproduces ReplayDirs for that annotation (out-of-range addresses patch to
// DirNone). Configurations share nothing but the immutable trace: each
// consumer owns its prediction tables, counters and statistics.
type EvalConfig struct {
	Dirs     []isa.Directive
	Consumer Consumer
}

// MultiEval replays the recorded stream once, feeding every record to each
// configuration. It returns the number of full replay passes saved versus
// evaluating the configurations with one replay each (len(cfgs)-1, never
// negative) — the quantity the vpserve trace_replay_passes_saved metric
// accumulates.
//
// The walk is chunk-tiled: each columnar chunk is decoded ONCE into a
// pass-local scratch slab (≈0.9 MiB of Records, comfortably cache-resident)
// and then run through every configuration's tight per-consumer loop before
// the walk advances, so the decode cost amortizes over all configurations
// and configurations 2..N read the slab from cache instead of re-streaming
// (or re-decoding) the multi-megabyte buffer. The hot loop stays identical
// to Replay's (no per-record multi-config dispatch), and every consumer
// still observes exactly the record sequence its own ReplayDirs/Replay call
// would have produced — configurations share nothing, so the tiling
// granularity is unobservable.
//
// Directive patching writes to a per-call scratch record, never to the
// decoded slab, so concurrent MultiEval/Replay calls on one sealed Recorder
// are safe. Consumers receive records under the standard read-only,
// duration-of-the-call contract.
func (rc *Recorder) MultiEval(cfgs ...EvalConfig) int64 {
	if len(cfgs) == 0 {
		return 0
	}
	rc.passes.Add(1)
	rc.drainEncode()
	staged := rc.tailRecords()
	nbatch := 0
	for _, cfg := range cfgs {
		if _, ok := cfg.Consumer.(BatchConsumer); ok {
			nbatch++
		}
	}
	if nbatch > 0 && !rc.scalarReplay {
		rc.multiEvalBatch(cfgs, nbatch < len(cfgs))
	} else {
		var scratch Record
		rc.walkSlabs(func(chunk []Record) { evalRecords(cfgs, chunk, &scratch) })
	}
	if len(staged) > 0 {
		var scratch Record
		evalRecords(cfgs, staged, &scratch)
	}
	return int64(len(cfgs) - 1)
}

// evalRecords runs one decoded chunk through every configuration's scalar
// per-consumer loop — the reference evaluation kernel, also used for the
// staging tail of an unsealed Recorder on the batch path.
func evalRecords(cfgs []EvalConfig, chunk []Record, scratch *Record) {
	for _, cfg := range cfgs {
		if cfg.Dirs == nil {
			c := cfg.Consumer
			for i := range chunk {
				c.Consume(&chunk[i])
			}
			continue
		}
		dirs, c := cfg.Dirs, cfg.Consumer
		for i := range chunk {
			*scratch = chunk[i]
			if a := scratch.Addr; a >= 0 && a < int64(len(dirs)) {
				scratch.Dir = dirs[a]
			} else {
				scratch.Dir = isa.DirNone
			}
			c.Consume(scratch)
		}
	}
}

// multiEvalBatch is the column-batch MultiEval walk: each chunk is decoded
// once into a Batch, every batch-capable configuration runs its kernel over
// the columns (directive-carrying configurations see a per-call patched Dir
// column; the recorded Dir column is restored afterwards), and — only when
// the configuration set is mixed — the batch is materialized once per chunk
// into a pooled Record slab for the scalar consumers, which then run the
// exact reference loop. Both consumer kinds still observe bit-identical
// streams in a single pass over the encoded trace.
func (rc *Recorder) multiEvalBatch(cfgs []EvalConfig, mixed bool) {
	var slab *recSlab
	if mixed {
		slab = getSlab()
		defer putSlab(slab)
	}
	var dirScratch []isa.Directive
	var scratch Record
	rc.walkBatches(func(b *Batch) {
		recorded := b.Dir
		var recs []Record
		if mixed {
			recs = b.Records(slab.recs)
		}
		for j := range cfgs {
			cfg := &cfgs[j]
			if bc, ok := cfg.Consumer.(BatchConsumer); ok {
				if cfg.Dirs == nil {
					b.Dir = recorded
				} else {
					if cap(dirScratch) < b.N {
						dirScratch = make([]isa.Directive, b.N)
					}
					dirScratch = dirScratch[:b.N]
					patchDirs(dirScratch, b.Addr, cfg.Dirs)
					b.Dir = dirScratch
				}
				bc.ConsumeBatch(b)
				continue
			}
			evalRecords(cfgs[j:j+1], recs, &scratch)
		}
		b.Dir = recorded
	})
}
