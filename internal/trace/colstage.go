package trace

import (
	"sync"

	"repro/internal/isa"
)

// This file defines the fused-recording staging surface: the write-side twin
// of batch.go. On the scalar path every retired instruction costs a Record
// materialization, an interface dispatch into Consume, and a 56-byte struct
// copy into the staging buffer — then flushStaged re-reads the structs and
// varint-encodes them one record at a time. RecordColumns removes all three:
// the VM dispatch loop writes the destructured record fields straight into
// per-chunk SoA columns (plain byte/int64 stores, no Record, no interface
// call), and the zigzag-delta/varint compression runs once per chunk at seal
// time through the speculative uniform-width encoders of codec.go. The
// scalar Consume path remains the bit-identical reference (SetScalarRecord /
// -scalar-record); the differential tests byte-diff the two end to end.

// RecordColumns is one chunk of staged records as parallel columns: element
// i of every column carries the field Record i would. The byte columns use
// exactly the packed layout of the chunk codec (flags bits, read-operand
// bits), so sealing a stage is a memcpy for the fixed columns and a
// delta/varint pass for the integer columns.
type RecordColumns struct {
	// N is the number of staged records. A fused producer appends by
	// writing element N of every column and incrementing N; it must flush
	// (and restage) once N reaches Cap.
	N int
	// FirstSeq is the stream position of element 0.
	FirstSeq int64

	// Op holds the raw opcode bytes.
	Op []byte
	// Flags holds the packed boolean fields and directive:
	// bit0 HasDest, bit1 DestFP, bit2 Taken, bit3 HasMem, bits4-5 Dir.
	Flags []byte
	// Dest holds the destination register numbers.
	Dest []byte
	// Reads holds two bytes per record, one per source operand:
	// bit7 Valid, bit6 FP, bits 0-5 the register number.
	Reads []byte

	// Addr, Value, Mem, Phase and Seq are the raw (untransformed) integer
	// fields; the chunk codec delta-compresses them at flush time.
	Addr  []int64
	Value []int64
	Mem   []int64
	Phase []int64
	Seq   []int64
}

// Cap returns the stage's record capacity.
func (st *RecordColumns) Cap() int { return len(st.Op) }

// packRead packs one source-operand read into the codec's byte layout.
func packRead(rd RegRead) byte {
	var b byte
	if rd.Valid {
		b = 0x80 | byte(rd.Reg)&0x3f
		if rd.FP {
			b |= 0x40
		}
	}
	return b
}

// appendRecord destructures r into the columns — the scalar producer's entry
// into column staging, packing exactly what chunkEncoder.encode would.
func (st *RecordColumns) appendRecord(r *Record) {
	i := st.N
	st.Op[i] = byte(r.Op)
	f := byte(r.Dir) << 4
	if r.HasDest {
		f |= 1
	}
	if r.DestFP {
		f |= 2
	}
	if r.Taken {
		f |= 4
	}
	if r.HasMem {
		f |= 8
	}
	st.Flags[i] = f
	st.Dest[i] = byte(r.Dest)
	st.Reads[2*i] = packRead(r.Reads[0])
	st.Reads[2*i+1] = packRead(r.Reads[1])
	st.Addr[i] = r.Addr
	st.Value[i] = r.Value
	st.Mem[i] = r.MemAddr
	st.Phase[i] = int64(r.Phase)
	st.Seq[i] = r.Seq
	st.N = i + 1
}

// materialize reconstructs the staged records into out (which must hold N
// records) — how the unsealed staging tail is replayed, bit-identical to the
// records a scalar staging buffer would hold.
func (st *RecordColumns) materialize(out []Record) {
	for i := range out[:st.N] {
		r := &out[i]
		f := st.Flags[i]
		r.Addr = st.Addr[i]
		r.Op = isa.Opcode(st.Op[i])
		r.Dir = isa.Directive(f >> 4)
		r.HasDest = f&1 != 0
		r.DestFP = f&2 != 0
		r.Dest = isa.Reg(st.Dest[i])
		r.Value = st.Value[i]
		r.Phase = int(st.Phase[i])
		r.Seq = st.Seq[i]
		b0, b1 := st.Reads[2*i], st.Reads[2*i+1]
		r.Reads[0] = RegRead{Valid: b0&0x80 != 0, FP: b0&0x40 != 0, Reg: isa.Reg(b0 & 0x3f)}
		r.Reads[1] = RegRead{Valid: b1&0x80 != 0, FP: b1&0x40 != 0, Reg: isa.Reg(b1 & 0x3f)}
		r.Taken = f&4 != 0
		r.HasMem = f&8 != 0
		r.MemAddr = st.Mem[i]
	}
}

// newRecordColumns allocates a stage of capacity n.
func newRecordColumns(n int) *RecordColumns {
	return &RecordColumns{
		Op:    make([]byte, n),
		Flags: make([]byte, n),
		Dest:  make([]byte, n),
		Reads: make([]byte, 2*n),
		Addr:  make([]int64, n),
		Value: make([]int64, n),
		Mem:   make([]int64, n),
		Phase: make([]int64, n),
		Seq:   make([]int64, n),
	}
}

// colsPool recycles chunk-sized stages across Recorders and ColumnSinks,
// the record-side twin of slabPool (~0.6 MiB each).
var colsPool = sync.Pool{New: func() any { return newRecordColumns(recorderChunkSize) }}

func getCols() *RecordColumns {
	st := colsPool.Get().(*RecordColumns)
	st.N = 0
	st.FirstSeq = 0
	return st
}

func putCols(st *RecordColumns) { colsPool.Put(st) }

// ColumnAppender is a Consumer that additionally accepts fused column
// appends. The VM dispatch loop detects it once at run start: when
// ColumnStage returns a non-nil stage the VM bypasses Consume entirely and
// writes destructured record fields straight into the stage's columns,
// calling FlushColumns each time the stage fills and FlushTail once when the
// run ends (halt or error). A nil ColumnStage (scalar-record mode, or a
// sealed recorder) keeps the run on the per-record Consume reference path.
// Both paths must be observably identical — the differential suites enforce
// it byte for byte.
type ColumnAppender interface {
	Consumer
	// ColumnStage returns the live staging columns, or nil when fused
	// recording is unavailable.
	ColumnStage() *RecordColumns
	// FlushColumns seals the filled stage and returns the (empty) stage to
	// continue appending into.
	FlushColumns() *RecordColumns
	// FlushTail settles a partially filled stage at end of run. Buffering
	// appenders (the Recorder) may keep the tail staged; delivering
	// appenders (ColumnSink) must hand it to their consumer.
	FlushTail()
}

// ColumnSink adapts a BatchConsumer into a ColumnAppender: the VM's fused
// loop stages columns and the sink delivers each filled stage to the
// consumer as a Batch — so a live recording run feeds column kernels (the
// profiler's training pass, prediction engines) at chunk granularity with no
// per-record dispatch, mirroring what replay already does for sealed traces.
// Batches are delivered in stream order, valid only for the duration of the
// ConsumeBatch call, exactly the replay contract.
type ColumnSink struct {
	c     BatchConsumer
	st    *RecordColumns
	dir   []isa.Directive
	batch Batch
	n     int64
}

// NewColumnSink returns a sink feeding c. Call Close when done to return the
// pooled stage.
func NewColumnSink(c BatchConsumer) *ColumnSink {
	return &ColumnSink{c: c, st: getCols(), dir: make([]isa.Directive, recorderChunkSize)}
}

// Consume implements the scalar reference path: records delivered one at a
// time still flow through the same staging columns, so scalar and fused
// producers feed the consumer identical batches.
func (s *ColumnSink) Consume(r *Record) {
	s.st.appendRecord(r)
	if s.st.N == s.st.Cap() {
		s.FlushColumns()
	}
}

// ColumnStage implements ColumnAppender.
func (s *ColumnSink) ColumnStage() *RecordColumns { return s.st }

// FlushColumns delivers the staged columns to the consumer as one Batch.
func (s *ColumnSink) FlushColumns() *RecordColumns {
	st := s.st
	if st.N == 0 {
		return st
	}
	n := st.N
	dir := s.dir[:n]
	for i, f := range st.Flags[:n] {
		dir[i] = isa.Directive(f >> 4)
	}
	s.batch = Batch{
		N:        n,
		FirstSeq: st.FirstSeq,
		Op:       st.Op[:n],
		Flags:    st.Flags[:n],
		Dest:     st.Dest[:n],
		Reads:    st.Reads[:2*n],
		Dir:      dir,
		Addr:     st.Addr[:n],
		Value:    st.Value[:n],
		MemAddr:  st.Mem[:n],
		Phase:    st.Phase[:n],
		Seq:      st.Seq[:n],
	}
	s.c.ConsumeBatch(&s.batch)
	s.n += int64(n)
	st.N = 0
	st.FirstSeq = s.n
	return st
}

// FlushTail delivers any partially filled stage.
func (s *ColumnSink) FlushTail() { s.FlushColumns() }

// Close flushes the tail and returns the pooled stage. The sink must not be
// used afterwards.
func (s *ColumnSink) Close() {
	s.FlushColumns()
	if s.st != nil {
		putCols(s.st)
		s.st = nil
	}
}

// scalarOnly hides a consumer's column/batch fast-path interfaces so the VM
// keeps the per-record reference loop.
type scalarOnly struct{ c Consumer }

func (s scalarOnly) Consume(r *Record) { s.c.Consume(r) }

// ScalarOnly wraps c so producers see only the plain Consumer interface —
// the -scalar-record escape hatch for consumers (trace file writers, batch
// kernels) that would otherwise be driven through the fused column path. The
// record stream is identical; only the delivery mechanism changes.
func ScalarOnly(c Consumer) Consumer { return scalarOnly{c} }
