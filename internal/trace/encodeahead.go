package trace

import "sync"

// The encode-ahead pipeline: the write-side mirror of walkPipe. On
// multi-core machines the recording thread hands each filled column stage to
// a single background encoder goroutine and immediately picks up a recycled
// stage from a small free list, so execution of chunk k+1 overlaps the
// zigzag/varint compression (and any spill write) of chunk k. One goroutine
// plus a FIFO channel keeps chunk order — and therefore spill decisions,
// chunk boundaries and the encoded bytes — exactly identical to the inline
// sequential path, which remains the GOMAXPROCS=1 fallback. The free list is
// double-buffered (two spare stages beyond the one being filled); a flush
// that finds it empty counts an encode stall, the backpressure signal the
// vpserve metrics surface.

// aheadItem is one unit of encoder work: a filled stage, or a drain barrier
// (st nil) whose ack closes once everything queued before it has encoded.
type aheadItem struct {
	st  *RecordColumns
	ack chan struct{}
}

type encodeAhead struct {
	rc   *Recorder
	work chan aheadItem
	free chan *RecordColumns
	done chan struct{}

	mu      sync.Mutex
	failure any // first encoder panic, re-raised on the recording thread
}

// startEncodeAhead launches the pipeline for rc.
func startEncodeAhead(rc *Recorder) *encodeAhead {
	a := &encodeAhead{
		rc:   rc,
		work: make(chan aheadItem, 2),
		free: make(chan *RecordColumns, 2),
		done: make(chan struct{}),
	}
	a.free <- getCols()
	a.free <- getCols()
	go a.run()
	return a
}

// run is the encoder goroutine: encode each stage in arrival order, recycle
// it to the free list. A panic (spill-file failure) is captured and re-raised
// on the recording thread at the next drain or stop; subsequent stages are
// skipped, not encoded against corrupt state.
func (a *encodeAhead) run() {
	defer close(a.done)
	enc := encoderPool.Get().(*chunkEncoder)
	defer encoderPool.Put(enc)
	for item := range a.work {
		if item.st == nil {
			close(item.ack)
			continue
		}
		a.encodeOne(enc, item.st)
		item.st.N = 0
		a.free <- item.st
	}
}

func (a *encodeAhead) encodeOne(enc *chunkEncoder, st *RecordColumns) {
	defer func() {
		if p := recover(); p != nil {
			a.mu.Lock()
			if a.failure == nil {
				a.failure = p
			}
			a.mu.Unlock()
		}
	}()
	if !a.failed() {
		a.rc.encodeStage(enc, st)
	}
}

func (a *encodeAhead) failed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failure != nil
}

// check re-raises a captured encoder panic on the calling goroutine.
func (a *encodeAhead) check() {
	a.mu.Lock()
	p := a.failure
	a.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

// submit queues a filled stage for encoding.
func (a *encodeAhead) submit(st *RecordColumns) { a.work <- aheadItem{st: st} }

// acquire returns a free stage to keep recording into, counting a stall when
// none is immediately available (the encoder is the bottleneck).
func (a *encodeAhead) acquire(rc *Recorder) *RecordColumns {
	select {
	case st := <-a.free:
		return st
	default:
	}
	rc.stalls.Add(1)
	return <-a.free
}

// drain blocks until everything submitted so far has been encoded (the
// channel round-trip is the happens-before edge an unsealed replay needs to
// read the chunk index without locks).
func (a *encodeAhead) drain() {
	ack := make(chan struct{})
	a.work <- aheadItem{ack: ack}
	<-ack
	a.check()
}

// stop encodes everything queued, terminates the goroutine and returns the
// pooled stages. Called under Seal.
func (a *encodeAhead) stop() {
	close(a.work)
	<-a.done
	for {
		select {
		case st := <-a.free:
			putCols(st)
		default:
			a.check()
			return
		}
	}
}
