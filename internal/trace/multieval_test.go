package trace

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

// TestMultiEvalMatchesSeparateReplays: each configuration of a MultiEval
// pass must observe exactly the record stream its own Replay/ReplayDirs
// call would have produced.
func TestMultiEvalMatchesSeparateReplays(t *testing.T) {
	const n = recorderChunkSize + 321 // cross a chunk boundary
	rc := NewRecorder()
	for i := int64(0); i < n; i++ {
		r := synthRecord(i)
		rc.Consume(&r)
	}
	rc.Seal()

	// Three directive tables of different shapes, plus a plain (nil) config.
	mkDirs := func(size int, f func(i int) isa.Directive) []isa.Directive {
		dirs := make([]isa.Directive, size)
		for i := range dirs {
			dirs[i] = f(i)
		}
		return dirs
	}
	tables := [][]isa.Directive{
		nil,
		mkDirs(1000, func(i int) isa.Directive { return isa.DirStride }),
		mkDirs(500, func(i int) isa.Directive {
			if i%2 == 0 {
				return isa.DirLastValue
			}
			return isa.DirNone
		}),
		mkDirs(10, func(i int) isa.Directive { return isa.DirStride }), // most addrs out of range
	}

	// Separate replays — the baseline semantics.
	want := make([]capture, len(tables))
	for i, dirs := range tables {
		if dirs == nil {
			rc.Replay(&want[i])
		} else {
			rc.ReplayDirs(dirs, &want[i])
		}
	}

	// One MultiEval pass.
	passesBefore := rc.Passes()
	got := make([]capture, len(tables))
	cfgs := make([]EvalConfig, len(tables))
	for i, dirs := range tables {
		cfgs[i] = EvalConfig{Dirs: dirs, Consumer: &got[i]}
	}
	saved := rc.MultiEval(cfgs...)

	if want := int64(len(tables) - 1); saved != want {
		t.Errorf("passes saved = %d, want %d", saved, want)
	}
	if passes := rc.Passes() - passesBefore; passes != 1 {
		t.Errorf("MultiEval took %d passes over the buffer, want 1", passes)
	}
	for i := range tables {
		if !reflect.DeepEqual(got[i].recs, want[i].recs) {
			t.Fatalf("config %d: MultiEval stream differs from separate replay", i)
		}
	}
}

func TestMultiEvalEmpty(t *testing.T) {
	rc := NewRecorder()
	r := synthRecord(0)
	rc.Consume(&r)
	rc.Seal()
	if saved := rc.MultiEval(); saved != 0 {
		t.Errorf("MultiEval() saved = %d, want 0", saved)
	}
	var got capture
	if saved := rc.MultiEval(EvalConfig{Consumer: &got}); saved != 0 {
		t.Errorf("single-config MultiEval saved = %d, want 0", saved)
	}
	if len(got.recs) != 1 {
		t.Errorf("single-config MultiEval delivered %d records, want 1", len(got.recs))
	}
}

func TestPassesCounter(t *testing.T) {
	rc := NewRecorder()
	r := synthRecord(0)
	rc.Consume(&r)
	rc.Seal()
	var a, b capture
	rc.Replay(&a)
	rc.ReplayDirs(nil, &b)
	rc.MultiEval(EvalConfig{Consumer: &a}, EvalConfig{Consumer: &b})
	if got := rc.Passes(); got != 3 {
		t.Errorf("Passes = %d, want 3", got)
	}
}
