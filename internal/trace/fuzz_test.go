package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip derives a pseudo-random record stream from the fuzz
// input and checks encode→decode is the identity, for both codec variants.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(0), uint16(1))
	f.Add(int64(42), uint16(300))
	f.Add(int64(-1), uint16(recorderChunkSize))
	f.Fuzz(func(t *testing.T, seed int64, count uint16) {
		n := int64(count%recorderChunkSize) + 1
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randomRecord(rng, int64(i))
			if rng.Intn(4) == 0 {
				recs[i].Seq = rng.Int63() - rng.Int63() // non-positional Seq
			}
		}
		var enc chunkEncoder
		out := make([]Record, n)
		for _, withSeq := range []bool{true, false} {
			data := enc.encode(nil, recs, 0, withSeq)
			got, err := decodeChunk(out, data, 0, withSeq, true)
			if err != nil {
				t.Fatalf("withSeq=%v: decode: %v", withSeq, err)
			}
			if int64(got) != n {
				t.Fatalf("withSeq=%v: decoded %d records, want %d", withSeq, got, n)
			}
			want := recs
			if !withSeq {
				want = make([]Record, n)
				copy(want, recs)
				for i := range want {
					want[i].Seq = int64(i)
				}
			}
			if !reflect.DeepEqual(out, want) {
				t.Fatalf("withSeq=%v: round trip differs", withSeq)
			}
		}
	})
}

// FuzzChunkDecoder throws arbitrary bytes at the strict chunk decoder; it
// must return an error or decode cleanly, never panic or read out of range.
func FuzzChunkDecoder(f *testing.F) {
	recs := synthStream(0, 64)
	var enc chunkEncoder
	f.Add(enc.encode(nil, recs, 0, true))
	f.Add(enc.encode(nil, recs, 0, false))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	out := make([]Record, recorderChunkSize)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, withSeq := range []bool{true, false} {
			n, err := decodeChunk(out, data, 0, withSeq, true)
			if err == nil {
				// Whatever decoded must re-encode to a decodable chunk.
				var e chunkEncoder
				re := e.encode(nil, out[:n], 0, withSeq)
				if _, err := decodeChunk(out[:n], re, 0, withSeq, true); err != nil {
					t.Fatalf("withSeq=%v: re-encode of decoded chunk failed: %v", withSeq, err)
				}
			}
		}
	})
}

// FuzzReaderV2 feeds arbitrary bytes (seeded with real traces) to the v2
// file reader; it must terminate with io.EOF or an error, never panic, and
// never hand out more records than a frame can hold.
func FuzzReaderV2(f *testing.F) {
	recs := synthStream(0, 600)
	f.Add(encodeV2FuzzSeed(recs))
	f.Add(encodeV2FuzzSeed(recs[:1]))
	f.Add([]byte("VPTRC02\n"))
	f.Add([]byte("VPTRC02\n\x04\x00\x00\x00\x00\x00\x00\x00AAAA"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec Record
		for i := 0; ; i++ {
			err := r.Next(&rec)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
			if !rec.Op.Valid() || !rec.Dir.Valid() {
				t.Fatalf("record %d: invalid Op/Dir passed strict decode: %+v", i, rec)
			}
			if rec.Seq != int64(i) {
				t.Fatalf("record %d: derived Seq = %d", i, rec.Seq)
			}
		}
	})
}

func encodeV2FuzzSeed(recs []Record) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		panic(err)
	}
	for i := range recs {
		w.Consume(&recs[i])
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzFileRoundTrip round-trips a derived record stream through both file
// formats.
func FuzzFileRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(1))
	f.Add(int64(7), uint16(500))
	f.Fuzz(func(t *testing.T, seed int64, count uint16) {
		n := int(count%2000) + 1
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randomRecord(rng, int64(i))
			// Keep v1-representable ranges: v1 stores Phase as u16 and packs
			// registers into 6 bits (both canonical for VM-produced traces).
			recs[i].Phase = int(uint16(recs[i].Phase))
		}
		for _, format := range []Format{FormatV1, FormatV2} {
			var buf bytes.Buffer
			w, err := NewWriterFormat(&buf, format)
			if err != nil {
				t.Fatal(err)
			}
			for i := range recs {
				w.Consume(&recs[i])
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := NewReader(&buf)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("%v: read %d records, want %d", format, len(got), n)
			}
			for i := range got {
				if got[i] != recs[i] {
					t.Fatalf("%v: record %d differs:\nwant %+v\ngot  %+v", format, i, recs[i], got[i])
				}
			}
		}
	})
}
