package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace file format: an 8-byte magic followed by fixed-size records.
// Traces let the command-line tools decouple execution from analysis, the
// way SHADE trace files decoupled tracing from the paper's analyzers.

var fileMagic = [8]byte{'V', 'P', 'T', 'R', 'C', '0', '1', '\n'}

// recordSize is the on-disk size of one encoded record.
//
//	addr int64, seq int64, value int64, memAddr int64,
//	op uint8, dir uint8, flags uint8, dest uint8,
//	phase uint16, reads [2]uint8 (bit7 valid, bit6 fp, bits0-5 reg)
const recordSize = 8 + 8 + 8 + 8 + 4 + 2 + 2

// Writer streams records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter writes the trace header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Consume implements Consumer by appending the record to the file.
func (tw *Writer) Consume(r *Record) {
	if tw.err != nil {
		return
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.Addr))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.Seq))
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.Value))
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.MemAddr))
	buf[32] = uint8(r.Op)
	buf[33] = uint8(r.Dir)
	var flags uint8
	if r.HasDest {
		flags |= 1
	}
	if r.DestFP {
		flags |= 2
	}
	if r.Taken {
		flags |= 4
	}
	if r.HasMem {
		flags |= 8
	}
	buf[34] = flags
	buf[35] = uint8(r.Dest)
	binary.LittleEndian.PutUint16(buf[36:], uint16(r.Phase))
	for i, rd := range r.Reads {
		var b uint8
		if rd.Valid {
			b = 0x80 | uint8(rd.Reg)&0x3f
			if rd.FP {
				b |= 0x40
			}
		}
		buf[38+i] = b
	}
	if _, err := tw.w.Write(buf[:]); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Close flushes buffered records. It returns the first error encountered
// while writing, if any.
func (tw *Writer) Close() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Count returns the number of records written so far.
func (tw *Writer) Count() int64 { return tw.n }

// Reader streams records from an io.Reader.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the trace header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if got != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", got)
	}
	return &Reader{r: br}, nil
}

// Next reads the next record. It returns io.EOF at a clean end of trace and
// io.ErrUnexpectedEOF for a truncated record.
func (tr *Reader) Next(r *Record) error {
	var buf [recordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trace: truncated record: %w", err)
	}
	r.Addr = int64(binary.LittleEndian.Uint64(buf[0:]))
	r.Seq = int64(binary.LittleEndian.Uint64(buf[8:]))
	r.Value = int64(binary.LittleEndian.Uint64(buf[16:]))
	r.MemAddr = int64(binary.LittleEndian.Uint64(buf[24:]))
	r.Op = isa.Opcode(buf[32])
	r.Dir = isa.Directive(buf[33])
	if !r.Op.Valid() {
		return fmt.Errorf("trace: invalid opcode %d in record %d", buf[32], r.Seq)
	}
	if !r.Dir.Valid() {
		return fmt.Errorf("trace: invalid directive %d in record %d", buf[33], r.Seq)
	}
	flags := buf[34]
	r.HasDest = flags&1 != 0
	r.DestFP = flags&2 != 0
	r.Taken = flags&4 != 0
	r.HasMem = flags&8 != 0
	r.Dest = isa.Reg(buf[35])
	r.Phase = int(binary.LittleEndian.Uint16(buf[36:]))
	for i := range r.Reads {
		b := buf[38+i]
		r.Reads[i] = RegRead{
			Valid: b&0x80 != 0,
			FP:    b&0x40 != 0,
			Reg:   isa.Reg(b & 0x3f),
		}
	}
	return nil
}

// ReadAll drains the reader into a slice; intended for tests and small
// traces.
func (tr *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		var r Record
		err := tr.Next(&r)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
