package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

// Binary trace file formats. Traces let the command-line tools decouple
// execution from analysis, the way SHADE trace files decoupled tracing from
// the paper's analyzers.
//
// VPTRC01 (legacy): an 8-byte magic followed by fixed 40-byte records.
//
// VPTRC02 (default): the 8-byte magic followed by self-delimiting frames,
// each one columnar-compressed chunk of up to fileChunkSize records:
//
//	u32  payload length (little-endian)
//	u32  CRC-32C (Castagnoli) of the payload
//	payload: the codec.go chunk encoding, WITHOUT the seq column — the
//	         on-disk Seq field is redundant (records are written in stream
//	         order) and is derived from record position on read.
//
// A clean EOF falls exactly on a frame boundary; anything else is reported
// as truncation. Readers accept both versions (sniffed from the magic);
// writers produce VPTRC02 unless FormatV1 is requested.

var (
	fileMagicV1 = [8]byte{'V', 'P', 'T', 'R', 'C', '0', '1', '\n'}
	fileMagicV2 = [8]byte{'V', 'P', 'T', 'R', 'C', '0', '2', '\n'}
)

// Format selects the on-disk trace encoding.
type Format int

const (
	// FormatV2 is the framed columnar-compressed encoding (default).
	FormatV2 Format = iota
	// FormatV1 is the legacy fixed-40-byte-record encoding.
	FormatV1
)

// String names the format as it appears in the file magic.
func (f Format) String() string {
	if f == FormatV1 {
		return "VPTRC01"
	}
	return "VPTRC02"
}

// ParseFormat maps a command-line format name ("v1", "v2") to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "V1", "VPTRC01":
		return FormatV1, nil
	case "v2", "V2", "VPTRC02", "":
		return FormatV2, nil
	}
	return FormatV2, fmt.Errorf("trace: unknown format %q (want v1 or v2)", s)
}

// ErrTruncated reports a trace file that ends mid-record or mid-frame.
var ErrTruncated = errors.New("truncated trace file")

// ErrCorrupt reports structurally invalid trace-file contents (bad frame
// bounds, CRC mismatch, malformed chunk payload).
var ErrCorrupt = errors.New("corrupt trace file")

// v1RecordSize is the on-disk size of one VPTRC01 record.
//
//	addr int64, seq int64, value int64, memAddr int64,
//	op uint8, dir uint8, flags uint8, dest uint8,
//	phase uint16, reads [2]uint8 (bit7 valid, bit6 fp, bits0-5 reg)
const v1RecordSize = 8 + 8 + 8 + 8 + 4 + 2 + 2

// fileChunkSize is the records-per-frame granularity of VPTRC02 writers:
// small enough that a reader buffers at most ~230 KiB of decoded records,
// large enough that the delta columns compress well.
const fileChunkSize = 4096

// maxFramePayload bounds a frame a reader will accept, rejecting absurd
// lengths from corrupt headers before allocating.
const maxFramePayload = 1 << 26

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer streams records to an io.Writer in the selected format. Write
// errors are sticky: the first failure is captured with the record index
// and byte offset where the stream stopped being durable, every record not
// durably written is counted as dropped, and Flush/Close surface the
// annotated error instead of silently losing the tail of the trace.
//
// Writes are batched — v1 records accumulate into a ~64 KiB buffer, v2
// frames are written whole — so error attribution is exact for v1 (fixed
// record size maps the partial-write offset back to a record index) and
// frame-granular for v2 (the first record of the failing frame).
//
// A v2 Writer stages the frame being filled as columns, not records: it
// implements ColumnAppender (the VM's fused loop writes destructured fields
// straight into the frame stage) and BatchConsumer (replaying a sealed
// Recorder to a file copies decoded columns frame by frame), and the scalar
// Consume path destructures into the same stage — all three producers reach
// the seal-time column encoder and produce byte-identical files.
type Writer struct {
	out     io.Writer
	format  Format
	cols    *RecordColumns // v2: the frame being filled
	enc     chunkEncoder
	buf     []byte // encoded bytes awaiting write
	bufRec  int64  // index of the first record encoded in buf
	n       int64  // records accepted
	off     int64  // bytes durably accepted by out
	dropped int64  // records not durably written
	err     error
}

// v1BatchBytes is the v1 write-batch size.
const v1BatchBytes = 1 << 16

// NewWriter writes the trace header and returns a streaming writer in the
// default format (VPTRC02).
func NewWriter(w io.Writer) (*Writer, error) { return NewWriterFormat(w, FormatV2) }

// NewWriterFormat writes the trace header for the given format and returns
// a streaming writer. FormatV1 is the escape hatch for consumers that still
// parse the legacy fixed-record layout.
func NewWriterFormat(w io.Writer, format Format) (*Writer, error) {
	magic := fileMagicV2
	if format == FormatV1 {
		magic = fileMagicV1
	}
	if _, err := w.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: write magic: %w", err)
	}
	tw := &Writer{out: w, format: format, off: int64(len(magic))}
	if format == FormatV2 {
		tw.cols = newRecordColumns(fileChunkSize)
	}
	return tw, nil
}

// flushBuf writes the pending batch. On failure it records the first error
// with the byte offset where durability ended and the index of the first
// record affected, and counts every accepted-but-unwritten record as
// dropped.
func (tw *Writer) flushBuf() {
	if len(tw.buf) == 0 || tw.err != nil {
		return
	}
	nw, err := tw.out.Write(tw.buf)
	if nw > 0 {
		tw.off += int64(nw)
	}
	if err != nil {
		failRec := tw.bufRec
		if tw.format == FormatV1 {
			// Fixed-size records make the partial write exactly attributable.
			failRec = (tw.off - int64(len(fileMagicV1))) / v1RecordSize
		}
		tw.err = fmt.Errorf("trace: write record %d (byte offset %d): %w", failRec, tw.off, err)
		tw.dropped = tw.n - failRec
	}
	tw.buf = tw.buf[:0]
	tw.bufRec = tw.n
}

// Consume implements Consumer by appending the record to the file.
func (tw *Writer) Consume(r *Record) {
	if tw.err != nil {
		tw.dropped++
		return
	}
	if tw.format == FormatV1 {
		tw.consumeV1(r)
		return
	}
	tw.cols.appendRecord(r)
	if tw.cols.N == fileChunkSize {
		tw.flushFrame()
	}
}

// ConsumeBatch implements BatchConsumer: decoded replay chunks are copied
// into the frame stage column-wise (the flags bytes are rebuilt so a
// directive column patched by ReplayDirs lands in the file, exactly as the
// scalar path writes the patched record). v1 falls back to per-record
// encoding.
func (tw *Writer) ConsumeBatch(b *Batch) {
	if tw.err != nil {
		tw.dropped += int64(b.N)
		return
	}
	if tw.format == FormatV1 {
		var r Record
		for i := 0; i < b.N; i++ {
			if tw.err != nil {
				tw.dropped += int64(b.N - i)
				return
			}
			b.Record(i, &r)
			tw.consumeV1(&r)
		}
		return
	}
	for k := 0; k < b.N; {
		st := tw.cols
		m := b.N - k
		if room := st.Cap() - st.N; m > room {
			m = room
		}
		i := st.N
		copy(st.Op[i:], b.Op[k:k+m])
		copy(st.Dest[i:], b.Dest[k:k+m])
		copy(st.Reads[2*i:], b.Reads[2*k:2*(k+m)])
		copy(st.Addr[i:], b.Addr[k:k+m])
		copy(st.Value[i:], b.Value[k:k+m])
		copy(st.Mem[i:], b.MemAddr[k:k+m])
		copy(st.Phase[i:], b.Phase[k:k+m])
		for j := 0; j < m; j++ {
			st.Flags[i+j] = b.Flags[k+j]&0x0f | byte(b.Dir[k+j])<<4
		}
		st.N = i + m
		k += m
		if st.N == st.Cap() {
			tw.flushFrame()
		}
	}
}

// ColumnStage implements ColumnAppender: the VM's fused loop may write
// destructured record fields straight into the frame stage. v1 keeps the
// per-record reference path.
func (tw *Writer) ColumnStage() *RecordColumns {
	if tw.format == FormatV1 {
		return nil
	}
	return tw.cols
}

// FlushColumns seals the filled frame stage.
func (tw *Writer) FlushColumns() *RecordColumns {
	tw.flushFrame()
	return tw.cols
}

// FlushTail implements ColumnAppender; the partial frame stays staged until
// Flush or Close, like scalar-consumed records.
func (tw *Writer) FlushTail() {}

func (tw *Writer) consumeV1(r *Record) {
	var buf [v1RecordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.Addr))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.Seq))
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.Value))
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.MemAddr))
	buf[32] = uint8(r.Op)
	buf[33] = uint8(r.Dir)
	var flags uint8
	if r.HasDest {
		flags |= 1
	}
	if r.DestFP {
		flags |= 2
	}
	if r.Taken {
		flags |= 4
	}
	if r.HasMem {
		flags |= 8
	}
	buf[34] = flags
	buf[35] = uint8(r.Dest)
	binary.LittleEndian.PutUint16(buf[36:], uint16(r.Phase))
	for i, rd := range r.Reads {
		var b uint8
		if rd.Valid {
			b = 0x80 | uint8(rd.Reg)&0x3f
			if rd.FP {
				b |= 0x40
			}
		}
		buf[38+i] = b
	}
	tw.buf = append(tw.buf, buf[:]...)
	tw.n++
	if len(tw.buf) >= v1BatchBytes {
		tw.flushBuf()
	}
}

// flushFrame encodes and writes the staged columns as one VPTRC02 frame.
// Records are counted as accepted here, at frame granularity, because fused
// producers bypass Consume and write the stage directly.
func (tw *Writer) flushFrame() {
	st := tw.cols
	if st == nil || st.N == 0 || tw.err != nil {
		return
	}
	tw.n += int64(st.N)
	tw.buf = append(tw.buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	tw.buf = tw.enc.encodeCols(tw.buf, st, false)
	payload := tw.buf[8:]
	binary.LittleEndian.PutUint32(tw.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(tw.buf[4:], crc32.Checksum(payload, castagnoli))
	st.N = 0
	tw.flushBuf()
}

// Flush writes any partially filled frame or batch. It returns the first
// write error, annotated with the failing record index and byte offset.
func (tw *Writer) Flush() error {
	tw.flushFrame()
	tw.flushBuf()
	return tw.err
}

// Close flushes buffered records. It returns the first error encountered
// while writing, if any, annotated with where it struck and how many
// records were dropped after it.
func (tw *Writer) Close() error {
	if err := tw.Flush(); err != nil {
		if tw.dropped > 0 {
			return fmt.Errorf("%w (%d records dropped after the first error)", err, tw.dropped)
		}
		return err
	}
	return nil
}

// Count returns the number of records accepted so far (records dropped
// after a write error are not counted).
func (tw *Writer) Count() int64 { return tw.n }

// Dropped returns how many records were discarded after the first write
// error.
func (tw *Writer) Dropped() int64 { return tw.dropped }

// FileWriter is a Writer bound to a file, published atomically: records
// stream into a temporary file in the destination directory, and Close
// fsyncs it, renames it over the final path, and fsyncs the directory. A
// crash at any point leaves either the complete previous file or the
// complete new one — never a torn trace that a crash-recovery journal (or a
// later analysis pass) could reference by name and then fail to parse.
type FileWriter struct {
	*Writer
	f      *os.File
	path   string
	closed bool
}

// CreateFile opens an atomic trace writer targeting path. The final file
// appears only on a successful Close; until then (and after any failure)
// the destination is untouched.
func CreateFile(path string, format Format) (*FileWriter, error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return nil, fmt.Errorf("trace: create %s: %w", path, err)
	}
	// CreateTemp opens 0600; widen to the usual 0644 so the published
	// trace is readable by other users, as an os.Create'd one would be.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("trace: create %s: %w", path, err)
	}
	tw, err := NewWriterFormat(f, format)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &FileWriter{Writer: tw, f: f, path: path}, nil
}

// Close flushes buffered records, makes the temp file durable, and renames
// it into place. Any failure removes the temp file and reports the error;
// the destination path is never left referencing partial data. Idempotent.
func (fw *FileWriter) Close() error {
	if fw.closed {
		return nil
	}
	fw.closed = true
	fail := func(err error) error {
		fw.f.Close()
		os.Remove(fw.f.Name())
		return err
	}
	if err := fw.Writer.Close(); err != nil {
		return fail(err)
	}
	if err := fw.f.Sync(); err != nil {
		return fail(fmt.Errorf("trace: sync %s: %w", fw.f.Name(), err))
	}
	if err := fw.f.Close(); err != nil {
		os.Remove(fw.f.Name())
		return fmt.Errorf("trace: close %s: %w", fw.f.Name(), err)
	}
	if err := os.Rename(fw.f.Name(), fw.path); err != nil {
		os.Remove(fw.f.Name())
		return fmt.Errorf("trace: publish %s: %w", fw.path, err)
	}
	return syncDir(filepath.Dir(fw.path))
}

// Abort discards the temp file without touching the destination.
func (fw *FileWriter) Abort() {
	if fw.closed {
		return
	}
	fw.closed = true
	fw.f.Close()
	os.Remove(fw.f.Name())
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("trace: sync dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: sync dir %s: %w", dir, err)
	}
	return nil
}

// Reader streams records from an io.Reader, accepting both trace formats.
type Reader struct {
	r      *bufio.Reader
	format Format

	// v2 state: the decoded frame being drained.
	buf     []Record
	bi      int
	payload []byte
	seq     int64 // records handed out so far (the derived Seq basis)
}

// NewReader validates the trace header and returns a streaming reader for
// whichever format the magic declares.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	switch got {
	case fileMagicV1:
		return &Reader{r: br, format: FormatV1}, nil
	case fileMagicV2:
		return &Reader{r: br, format: FormatV2}, nil
	}
	return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", got)
}

// Format reports the file format the header declared.
func (tr *Reader) Format() Format { return tr.format }

// Next reads the next record. It returns io.EOF at a clean end of trace and
// an error wrapping ErrTruncated or ErrCorrupt (or the v1 diagnostics) for
// anything malformed.
func (tr *Reader) Next(r *Record) error {
	if tr.format == FormatV1 {
		return tr.nextV1(r)
	}
	for tr.bi >= len(tr.buf) {
		if err := tr.readFrame(); err != nil {
			return err
		}
	}
	*r = tr.buf[tr.bi]
	tr.bi++
	return nil
}

// readFrame reads and decodes the next VPTRC02 frame into tr.buf.
func (tr *Reader) readFrame() error {
	var hdr [8]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF // clean end: EOF exactly on a frame boundary
		}
		return fmt.Errorf("trace: frame header: %w: %w", ErrTruncated, err)
	}
	size := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if size == 0 || size > maxFramePayload {
		return fmt.Errorf("trace: %w: frame payload length %d", ErrCorrupt, size)
	}
	if cap(tr.payload) < int(size) {
		tr.payload = make([]byte, size)
	}
	tr.payload = tr.payload[:size]
	if _, err := io.ReadFull(tr.r, tr.payload); err != nil {
		if errors.Is(err, io.EOF) {
			// A bare EOF here still means a truncated frame — the header
			// promised a payload; don't let io.EOF escape as a clean end.
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("trace: frame payload: %w: %w", ErrTruncated, err)
	}
	if got := crc32.Checksum(tr.payload, castagnoli); got != crc {
		return fmt.Errorf("trace: %w: frame CRC mismatch (stored %#x, computed %#x)", ErrCorrupt, crc, got)
	}
	var d chunkDecoder
	if err := d.init(tr.payload, tr.seq, false, true); err != nil {
		return fmt.Errorf("trace: %w: %w", ErrCorrupt, err)
	}
	if cap(tr.buf) < d.n {
		tr.buf = make([]Record, d.n)
	}
	tr.buf = tr.buf[:d.n]
	if err := d.decodeAll(tr.buf); err != nil {
		return fmt.Errorf("trace: %w: %w", ErrCorrupt, err)
	}
	tr.bi = 0
	tr.seq += int64(d.n)
	return nil
}

func (tr *Reader) nextV1(r *Record) error {
	var buf [v1RecordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trace: truncated record: %w", err)
	}
	r.Addr = int64(binary.LittleEndian.Uint64(buf[0:]))
	r.Seq = int64(binary.LittleEndian.Uint64(buf[8:]))
	r.Value = int64(binary.LittleEndian.Uint64(buf[16:]))
	r.MemAddr = int64(binary.LittleEndian.Uint64(buf[24:]))
	r.Op = isa.Opcode(buf[32])
	r.Dir = isa.Directive(buf[33])
	if !r.Op.Valid() {
		return fmt.Errorf("trace: invalid opcode %d in record %d", buf[32], r.Seq)
	}
	if !r.Dir.Valid() {
		return fmt.Errorf("trace: invalid directive %d in record %d", buf[33], r.Seq)
	}
	flags := buf[34]
	r.HasDest = flags&1 != 0
	r.DestFP = flags&2 != 0
	r.Taken = flags&4 != 0
	r.HasMem = flags&8 != 0
	r.Dest = isa.Reg(buf[35])
	r.Phase = int(binary.LittleEndian.Uint16(buf[36:]))
	for i := range r.Reads {
		b := buf[38+i]
		r.Reads[i] = RegRead{
			Valid: b&0x80 != 0,
			FP:    b&0x40 != 0,
			Reg:   isa.Reg(b & 0x3f),
		}
	}
	return nil
}

// ReadAll drains the reader into a slice; intended for tests and small
// traces.
func (tr *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		var r Record
		err := tr.Next(&r)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
