// Package workload provides the benchmark suite: one synthetic program per
// SPEC95 benchmark the paper evaluates, written in the simulated machine's
// assembly language and parameterized by a training/test input (seed and
// scale), so every program can be run n times with genuinely different
// inputs — the property Section 4 of the paper studies.
//
// The real SPEC95 binaries are not reproducible here (they are proprietary,
// and the paper traced SPARC executables under SHADE), so each workload is
// designed to mimic its benchmark's published value-predictability
// fingerprint: the size of its static working set of value-producing
// instructions (which drives prediction-table pressure), the bimodal split
// between highly predictable and unpredictable instructions (figure 2.2),
// the share of stride-predictable instructions (figure 2.3), and the length
// and predictability of its critical dependence chains (which drive the ILP
// results of table 5.2). Nothing is hard-wired to the expected results: the
// programs compute real data-dependent values and the fingerprints emerge
// from their structure.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Input parameterizes one run of a workload, standing in for the paper's
// "different input parameters and input files".
type Input struct {
	// Seed drives the pseudo-random generation of the workload's input
	// data (the contents of its data segment).
	Seed uint64
	// Scale multiplies the amount of work; 0 means 1. Profiling runs and
	// "real" runs can use different scales as well as different seeds.
	Scale int
}

func (in Input) String() string {
	return fmt.Sprintf("seed=%d,scale=%d", in.Seed, in.scale())
}

func (in Input) scale() int {
	if in.Scale <= 0 {
		return 1
	}
	return in.Scale
}

// Spec describes one benchmark.
type Spec struct {
	// Name is the SPEC95-derived benchmark name ("go", "gcc", "mgrid"…).
	Name string
	// FP marks floating-point benchmarks (reported with init/computation
	// phases in table 2.1).
	FP bool
	// Secondary marks the extra FP benchmarks used only by table 2.1 and
	// figure 2.2, not by the Section 4/5 experiments.
	Secondary bool
	// Description summarizes what the synthetic program does.
	Description string
	// Source generates the assembly text for an input.
	Source func(in Input) string
}

// specs is populated by the per-benchmark files' init functions.
var specs []Spec

func register(s Spec) {
	specs = append(specs, s)
	sort.Slice(specs, func(i, j int) bool { return order(specs[i].Name) < order(specs[j].Name) })
}

// paperOrder is the benchmark order of the paper's figures.
var paperOrder = []string{
	"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex", "mgrid",
	"tomcatv", "swim", "su2cor", "hydro2d",
}

func order(name string) int {
	for i, n := range paperOrder {
		if n == name {
			return i
		}
	}
	return len(paperOrder)
}

// ByName finds a benchmark spec.
func ByName(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the nine primary benchmarks in the paper's order.
func Names() []string {
	var out []string
	for _, s := range specs {
		if !s.Secondary {
			out = append(out, s.Name)
		}
	}
	return out
}

// AllNames returns every benchmark, primary then secondary.
func AllNames() []string {
	var out []string
	for _, s := range specs {
		out = append(out, s.Name)
	}
	return out
}

// progCache memoizes assembled images: workload generation is deterministic
// in (name, input), and the experiment drivers run the same program under
// many predictor configurations.
var progCache sync.Map // key progKey → *program.Program

type progKey struct {
	name  string
	input Input
}

// Build generates and assembles the named benchmark for an input. The
// returned image is shared and must not be mutated; annotation clones it.
func Build(name string, in Input) (*program.Program, error) {
	key := progKey{name, Input{Seed: in.Seed, Scale: in.scale()}}
	if p, ok := progCache.Load(key); ok {
		return p.(*program.Program), nil
	}
	s, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, AllNames())
	}
	p, err := asm.Assemble(name, s.Source(in))
	if err != nil {
		return nil, fmt.Errorf("workload: assemble %s: %w", name, err)
	}
	progCache.Store(key, p)
	return p, nil
}

// Run executes a program image to completion, feeding the trace to the
// consumers, and returns the dynamic instruction count.
func Run(p *program.Program, consumers ...trace.Consumer) (int64, error) {
	return RunConfig(p, vm.Config{}, consumers...)
}

// RunConfig is Run with an explicit machine configuration; vpserve uses it
// to impose vm.Limits on untrusted guest programs. Sandbox errors
// (vm.ErrFuelExhausted and friends) stay unwrappable through the returned
// error.
func RunConfig(p *program.Program, cfg vm.Config, consumers ...trace.Consumer) (int64, error) {
	m, err := vm.New(p, cfg)
	if err != nil {
		return 0, err
	}
	defer m.Release()
	for _, c := range consumers {
		m.Attach(c)
	}
	if err := m.Run(); err != nil {
		return m.InstructionsRetired(), fmt.Errorf("workload: run %s: %w", p.Name, err)
	}
	return m.InstructionsRetired(), nil
}

// BuildAndRun is the common build-then-trace helper used by tools, tests and
// the experiment drivers.
func BuildAndRun(name string, in Input, consumers ...trace.Consumer) (int64, error) {
	p, err := Build(name, in)
	if err != nil {
		return 0, err
	}
	return Run(p, consumers...)
}

// TrainingInputs returns the paper's n=5 distinct profiling inputs for a
// benchmark; EvaluationInput returns the disjoint "real user input" the
// Section 5 experiments run under.
func TrainingInputs(n int) []Input {
	ins := make([]Input, n)
	for i := range ins {
		ins[i] = Input{Seed: 0x9E3779B97F4A7C15 * uint64(i+1), Scale: 1}
	}
	return ins
}

// EvaluationInput is deliberately different from every training input.
func EvaluationInput() Input { return Input{Seed: 0xD1B54A32D192ED03, Scale: 1} }
