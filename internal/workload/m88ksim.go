package workload

func init() {
	register(Spec{
		Name: "m88ksim",
		Description: "Instruction-set simulator for a toy guest CPU: a " +
			"fetch-decode-dispatch-execute loop interpreting a short guest " +
			"program over seed-dependent guest data. Like the real " +
			"m88ksim, its value stream is dominated by simulator " +
			"bookkeeping — guest PC, processor-status/statistics update " +
			"chains, cycle counters — all advancing by constant strides " +
			"through memory, which makes the interpreter's long serial " +
			"dependence chains almost fully value-predictable. That is " +
			"exactly the structure behind the paper's spectacular " +
			"m88ksim row in table 5.2 (≈500% ILP increase): collapsing " +
			"the predictable interpretation chain frees the whole window.",
		Source: m88ksimSource,
	})
}

func m88ksimSource(in Input) string {
	g := newGen(in.Seed ^ 0x88)
	iters := 4000 * in.scale() // guest loop iterations; 4 guest instructions each

	// Guest machine state lives in data memory: the guest PC, the
	// processor status word, 8 guest registers and a small guest data
	// array. The guest program is a fixed 4-instruction loop
	// (add-immediate, load, store, loop-control); its *data* varies with
	// the seed.
	step := g.rng.intn(97) + 3 // guest induction step, seed-dependent

	g.l("; m88ksim: toy-CPU instruction-set simulator (%s)", in)
	g.l(".data")
	g.l("gpcmem:")
	g.l("\t.word 0")
	g.l("cycmem:")
	g.l("\t.word 0")
	g.l("pswmem:")
	g.l("\t.word %d", g.rng.intn(1<<16))
	g.l("gcode:")
	g.l("\t.word 0, 1, 2, 3") // guest opcodes, one per slot
	g.l("goperand:")
	g.l("\t.word %d, 1, 2, 0", step) // per-slot operand
	g.l("handlers:")
	g.l("\t.word h_addi, h_load, h_store, h_loop")
	g.l("gregs:")
	g.l("\t.word 0, 0, 0, 0, 0, 0, 0, 0")
	g.words("gmem", 64, 1<<20)
	g.l("stats:")
	g.l("\t.space 8")

	g.l(".text")
	g.label("main")
	g.l("\tldi r3, %d", 4*iters) // total guest instructions

	g.label("fetch")
	// Fetch the guest PC from simulator state (the head of the serial
	// interpretation chain), decode the slot and dispatch.
	g.l("\tld r10, gpcmem(zero)") // guest PC: stride 1
	g.l("\tandi r4, r10, 3")
	g.l("\tld r5, gcode(r4)")
	g.l("\tld r6, goperand(r4)")
	g.l("\tld r7, handlers(r5)")
	g.l("\tjalr ra, r7")
	// Processor-status / statistics update: a long serial chain through
	// memory whose every link advances by a constant per iteration —
	// deeply serial, yet perfectly stride-predictable. This models the
	// simulator's per-instruction state update (status word, issue
	// counters, statistics), which dominates real m88ksim.
	g.l("\tld r12, pswmem(zero)")
	g.l("\taddi r13, r12, 7")
	g.l("\taddi r14, r13, 13")
	g.l("\taddi r15, r14, 3")
	g.l("\taddi r16, r15, 11")
	g.l("\taddi r17, r16, 5")
	g.l("\taddi r18, r17, 9")
	g.l("\tmuli r19, r18, 3")
	g.l("\taddi r19, r19, 1")
	g.l("\tsub r19, r19, r18")
	g.l("\tsub r19, r19, r18")
	g.l("\tst r19, pswmem(zero)")
	// Simulated cycle counter: another predictable memory chain.
	g.l("\tld r20, cycmem(zero)")
	g.l("\taddi r20, r20, 2")
	g.l("\tst r20, cycmem(zero)")
	// Advance the guest PC.
	g.l("\taddi r11, r10, 1")
	g.l("\tst r11, gpcmem(zero)")
	g.l("\tbne r11, r3, fetch")
	g.l("\tst r19, stats(zero)")
	g.l("\tst r20, stats+1(zero)")
	g.l("\thalt")

	// Guest ADDI: greg0 += operand. greg0 advances by a constant stride
	// every guest iteration, so both the load and the add are perfectly
	// stride-predictable.
	g.label("h_addi")
	g.l("\tld r21, gregs(zero)")
	g.l("\tadd r21, r21, r6")
	g.l("\tst r21, gregs(zero)")
	g.l("\tjalr zero, ra")

	// Guest LOAD: greg1 = gmem[greg0 mod 64]; the address hashes around,
	// so the loaded value is the benchmark's unpredictable minority.
	g.label("h_load")
	g.l("\tld r21, gregs(zero)")
	g.l("\tandi r22, r21, 63")
	g.l("\tld r23, gmem(r22)")
	g.l("\tst r23, gregs+1(zero)")
	g.l("\tjalr zero, ra")

	// Guest STORE: gmem[greg0 mod 64] = greg1 + greg2; greg2 is the
	// guest's own accumulator, advanced by a constant each iteration.
	g.label("h_store")
	g.l("\tld r21, gregs(zero)")
	g.l("\tandi r22, r21, 63")
	g.l("\tld r23, gregs+1(zero)")
	g.l("\tld r24, gregs+2(zero)")
	g.l("\taddi r24, r24, 5")
	g.l("\tst r24, gregs+2(zero)")
	g.l("\tadd r25, r23, r24")
	g.l("\tst r25, gmem(r22)")
	g.l("\tjalr zero, ra")

	// Guest LOOP: guest branch bookkeeping — taken-branch statistic and
	// guest loop counter, both stride-predictable.
	g.label("h_loop")
	g.l("\tld r21, gregs+3(zero)")
	g.l("\taddi r21, r21, 1")
	g.l("\tst r21, gregs+3(zero)")
	g.l("\tjalr zero, ra")

	return g.String()
}
