package workload

func init() {
	register(Spec{
		Name: "vortex",
		Description: "Object-oriented database transactions in the style " +
			"of 147.vortex: typed records are allocated from a bump " +
			"allocator, initialized field by field through per-attribute " +
			"method blocks, linked into indexes, and then queried. " +
			"Allocation cursors, object identifiers, timestamps and " +
			"per-method statistics all advance by constant strides, and " +
			"the static footprint (many small method blocks) is large — " +
			"the combination that makes vortex the paper's best case: " +
			"profiling both adds correct predictions and removes " +
			"mispredictions, and value prediction collapses the long " +
			"allocate→initialize→index chains (table 5.2's 159–180%).",
		Source: vortexSource,
	})
}

func vortexSource(in Input) string {
	g := newGen(in.Seed ^ 0x40)
	const recSize = 8
	const methods = 96
	records := 5000 * in.scale()
	const heapRecs = 2048 // heap capacity per pass (wraps)

	g.l("; vortex: OO database transactions (%s)", in)
	g.l(".data")
	g.l("alloc:")
	g.l("\t.word 0") // bump-allocator cursor (record slots used)
	g.l("oid:")
	g.l("\t.word 1000") // next object id
	g.l("clock:")
	g.l("\t.word 0") // transaction timestamp
	g.words("payload", 1024, 1<<24)
	g.space("heap", heapRecs*recSize)
	g.space("index", 4096)
	g.space("methodstats", methods)
	g.l("querystats:")
	g.l("\t.space 4")
	g.l("abytes:")
	g.l("\t.word 0") // bytes-allocated accounting
	g.label("methodtab")
	for k := 0; k < methods; k++ {
		g.l("\t.word m%d", k)
	}

	g.l(".text")
	g.label("main")
	g.l("\tldi r1, 0") // transaction counter
	g.l("\tldi r2, %d", records)
	g.l("\tldi r27, %d", methods)
	g.label("txn")
	// Allocate a record: bump cursor (stride through memory), assign
	// object id and timestamp (strides), and a payload word (random).
	g.l("\tld r3, alloc(zero)") // slots used so far: stride 1
	g.l("\tandi r4, r3, %d", heapRecs-1)
	g.l("\tmuli r5, r4, %d", recSize) // record base: stride recSize (mod wrap)
	g.l("\taddi r6, r3, 1")
	g.l("\tst r6, alloc(zero)")
	g.l("\tld r7, oid(zero)") // object id: stride 1
	g.l("\taddi r8, r7, 1")
	g.l("\tst r8, oid(zero)")
	g.l("\tld r9, clock(zero)") // timestamp: stride 3
	g.l("\taddi r9, r9, 3")
	g.l("\tst r9, clock(zero)")
	// Storage accounting: a serial chain through memory whose links all
	// advance by constants — deeply serial yet stride-predictable, like
	// the allocator bookkeeping of the real vortex.
	g.l("\tld r24, abytes(zero)")
	g.l("\taddi r24, r24, %d", recSize)
	g.l("\taddi r24, r24, 0")
	g.l("\tmuli r25, r24, 2")
	g.l("\taddi r25, r25, 1")
	g.l("\tsub r25, r25, r24")
	g.l("\taddi r25, r25, -1")
	g.l("\tmuli r26, r25, 3")
	g.l("\taddi r26, r26, 2")
	g.l("\tsub r26, r26, r25")
	g.l("\tsub r26, r26, r25")
	g.l("\tsub r26, r26, r25")
	g.l("\taddi r26, r26, -2")
	g.l("\tst r26, abytes(zero)")
	// Initialize header fields.
	g.l("\tst r7, heap(r5)")   // field 0: oid
	g.l("\tst r9, heap+1(r5)") // field 1: timestamp
	g.l("\tandi r10, r7, 1023")
	g.l("\tld r11, payload(r10)") // payload: unpredictable
	g.l("\tst r11, heap+2(r5)")   // field 2: payload
	// Class dispatch: each record's class selects an attribute method
	// (modulo keeps every method reachable).
	g.l("\trem r12, r11, r27")
	g.l("\tld r13, methodtab(r12)")
	g.l("\tjalr ra, r13")
	// Index insert: hash oid into the index.
	g.l("\tandi r14, r7, 4095")
	g.l("\tst r5, index(r14)")
	// Query: look up an earlier object and compare timestamps.
	g.l("\tsrai r15, r7, 1")
	g.l("\tandi r15, r15, 4095")
	g.l("\tld r16, index(r15)")  // indexed record base: data-dependent
	g.l("\tld r17, heap+1(r16)") // its timestamp
	g.l("\tslt r18, r17, r9")
	g.l("\tld r19, querystats(zero)")
	g.l("\tadd r19, r19, r18")
	g.l("\tst r19, querystats(zero)")
	g.l("\taddi r1, r1, 1") // transaction counter: stride
	g.l("\tbne r1, r2, txn")
	g.l("\thalt")

	// Attribute methods: each initializes the record's remaining fields
	// from its own constants and sequence counters. Fields derived from
	// per-method sequence counters are stride-predictable; the payload
	// mix is not.
	for k := 0; k < methods; k++ {
		c := g.rng.intn(1 << 16)
		g.label("m%d", k)
		g.l("\tldi r20, %d", c) // class constant: predictable
		g.l("\tld r21, methodstats+%d(zero)", k)
		g.l("\taddi r21, r21, 1") // per-class sequence: stride
		g.l("\tst r21, methodstats+%d(zero)", k)
		g.l("\tst r20, heap+3(r5)") // field 3: class constant
		g.l("\tst r21, heap+4(r5)") // field 4: class sequence
		g.l("\txor r22, r11, r20")  // field 5: payload mix
		g.l("\tst r22, heap+5(r5)")
		g.l("\tadd r23, r7, r21") // field 6: oid+seq (stride-ish)
		g.l("\tst r23, heap+6(r5)")
		g.l("\tjalr zero, ra")
	}
	return g.String()
}
