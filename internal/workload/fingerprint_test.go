package workload

import (
	"testing"

	"repro/internal/profiler"
)

// These tests pin each synthetic benchmark to the value-predictability
// fingerprint it was designed to reproduce (DESIGN.md §2). If a workload
// edit drifts away from its SPEC95 counterpart's published character, the
// experiment shapes in EXPERIMENTS.md stop being meaningful — so the
// fingerprints are enforced here, not just observed.

// fingerprint profiles one benchmark under the evaluation input.
func fingerprint(t *testing.T, bench string) *profiler.Collector {
	t.Helper()
	col := profiler.NewCollector()
	if _, err := BuildAndRun(bench, EvaluationInput(), col); err != nil {
		t.Fatal(err)
	}
	return col
}

// aggregates computes overall stride accuracy and static working-set size.
func aggregates(col *profiler.Collector) (accuracy float64, workingSet int) {
	var att, corr int64
	col.ForEach(func(s *profiler.InstStat) {
		if s.TotalAttempts() > 0 {
			workingSet++
			att += s.TotalAttempts()
			corr += s.TotalCorrectStride()
		}
	})
	if att > 0 {
		accuracy = 100 * float64(corr) / float64(att)
	}
	return accuracy, workingSet
}

func TestFingerprintWorkingSets(t *testing.T) {
	// The finite-table experiments depend on which benchmarks overflow
	// the 512-entry table (the paper's table-pressure cluster) and which
	// sit far below it.
	large := map[string]bool{"gcc": true}
	small := map[string]bool{"m88ksim": true, "compress": true, "li": true, "mgrid": true}
	for _, bench := range Names() {
		_, ws := aggregates(fingerprint(t, bench))
		switch {
		case large[bench] && ws <= 512:
			t.Errorf("%s: working set %d no longer exceeds the 512-entry table", bench, ws)
		case small[bench] && ws >= 256:
			t.Errorf("%s: working set %d no longer small", bench, ws)
		}
		t.Logf("%s: %d static value producers", bench, ws)
	}
}

func TestFingerprintAccuracyClasses(t *testing.T) {
	// m88ksim and vortex are the highly predictable benchmarks (their
	// table 5.2 rows depend on it); compress and go sit low.
	cases := map[string][2]float64{ // [min, max] overall stride accuracy
		"m88ksim":  {75, 101},
		"vortex":   {65, 101},
		"compress": {0, 60},
		"go":       {0, 65},
	}
	for bench, bounds := range cases {
		acc, _ := aggregates(fingerprint(t, bench))
		if acc < bounds[0] || acc > bounds[1] {
			t.Errorf("%s: overall stride accuracy %.1f%% outside [%g,%g]", bench, acc, bounds[0], bounds[1])
		}
	}
}

func TestFingerprintBimodality(t *testing.T) {
	// Figure 2.2's foundation: per benchmark, most static instructions
	// live in the extreme deciles.
	for _, bench := range Names() {
		col := fingerprint(t, bench)
		var total, extreme int
		col.ForEach(func(s *profiler.InstStat) {
			if s.TotalAttempts() == 0 {
				return
			}
			total++
			if a := s.Accuracy(); a <= 20 || a > 80 {
				extreme++
			}
		})
		if total == 0 {
			t.Fatalf("%s: nothing profiled", bench)
		}
		// compress legitimately carries mid-range accuracies (its input
		// runs make the hash chain ~60% predictable), as in the paper's
		// own figure 2.2; the floor accommodates it.
		if share := 100 * float64(extreme) / float64(total); share < 50 {
			t.Errorf("%s: only %.0f%% of instructions at the accuracy extremes; bimodality lost", bench, share)
		}
	}
}

func TestFingerprintLiListDichotomy(t *testing.T) {
	// li's design: the sequentially consed list's cdr chain is stride-
	// predictable, the shuffled list's is not. Find the two cdr loads by
	// behaviour: there must exist at least one high-accuracy
	// high-stride-efficiency load and one low-accuracy load with many
	// attempts.
	col := fingerprint(t, "li")
	foundStrideLoad, foundChaosLoad := false, false
	col.ForEach(func(s *profiler.InstStat) {
		if !s.Load || s.TotalAttempts() < 1000 {
			return
		}
		if s.Accuracy() > 90 && s.StrideEfficiency() > 90 {
			foundStrideLoad = true
		}
		if s.Accuracy() < 10 {
			foundChaosLoad = true
		}
	})
	if !foundStrideLoad {
		t.Error("li: no stride-predictable hot load (sequential cdr chain lost)")
	}
	if !foundChaosLoad {
		t.Error("li: no unpredictable hot load (shuffled cdr chain lost)")
	}
}

func TestFingerprintM88ksimChainPredictable(t *testing.T) {
	// m88ksim's table 5.2 row requires its serial interpretation chain
	// (the psw update chain) to be essentially fully stride-predictable:
	// its hottest instructions must be >99% accurate.
	col := fingerprint(t, "m88ksim")
	var hot, hotPredictable int
	col.ForEach(func(s *profiler.InstStat) {
		if s.TotalAttempts() < 10000 {
			return
		}
		hot++
		if s.Accuracy() > 99 {
			hotPredictable++
		}
	})
	if hot == 0 {
		t.Fatal("no hot instructions")
	}
	if share := float64(hotPredictable) / float64(hot); share < 0.7 {
		t.Errorf("m88ksim: only %.0f%% of hot instructions near-perfectly predictable", 100*share)
	}
}

func TestFingerprintGccConstantsAndCounters(t *testing.T) {
	// gcc's handlers must contribute both perfectly predictable
	// instructions (constants, per-handler counters) and unpredictable
	// field extractions — the mix that makes its figure 5.3/5.4 row work.
	col := fingerprint(t, "gcc")
	var perfect, hopeless int
	col.ForEach(func(s *profiler.InstStat) {
		if s.TotalAttempts() == 0 {
			return
		}
		switch a := s.Accuracy(); {
		case a > 95:
			perfect++
		case a < 5:
			hopeless++
		}
	})
	if perfect < 100 || hopeless < 100 {
		t.Errorf("gcc: predictable/unpredictable split %d/%d too thin", perfect, hopeless)
	}
}
