package workload

func init() {
	register(Spec{
		Name: "compress",
		Description: "Adaptive dictionary compression in the style of " +
			"compress95's Lempel-Ziv coder: a rolling hash over a " +
			"pseudo-random input stream drives dictionary probes, " +
			"insertions and code emission. The value stream is dominated " +
			"by data-dependent hashes and dictionary contents " +
			"(unpredictable) with a thin stride-predictable backbone of " +
			"input/output cursors — a tiny static working set that leaves " +
			"nothing for the profile classifier to rescue from table " +
			"pressure (the paper's 'small working-set' cluster).",
		Source: compressSource,
	})
}

func compressSource(in Input) string {
	g := newGen(in.Seed ^ 0xC0)
	n := 24000 * in.scale() // input bytes
	const hashBits = 12
	const hashSize = 1 << hashBits

	g.l("; compress: LZ-style adaptive coder (%s)", in)
	g.l(".data")
	// Input stream: bytes with some local correlation (runs), so the
	// dictionary actually hits sometimes, like real text.
	g.label("input")
	cur := g.rng.intn(256)
	for i := 0; i < n; i++ {
		switch g.rng.intn(8) {
		case 0, 1, 2, 3, 4: // runs: repeat the byte (compressible input)
		case 5, 6: // local drift
			cur = (cur + g.rng.intn(7) - 3 + 256) % 256
		default: // fresh byte
			cur = g.rng.intn(256)
		}
		g.l("\t.word %d", cur)
	}
	g.space("htab", hashSize)  // dictionary: hash → code
	g.space("codes", hashSize) // dictionary: hash → last symbol
	g.space("output", n)

	g.l(".text")
	g.label("main")
	g.l("\tldi r1, 0")     // input cursor
	g.l("\tldi r2, %d", n) // input length
	g.l("\tldi r3, 0")     // rolling hash
	g.l("\tldi r4, 256")   // next free code
	g.l("\tldi r5, 0")     // output cursor
	g.l("\tldi r6, 0")     // hit statistic

	g.label("loop")
	g.l("\tld r7, input(r1)") // next symbol: unpredictable
	// Rolling hash: h = ((h<<4) ^ sym) & mask — data-dependent.
	g.l("\tslli r8, r3, 4")
	g.l("\txor r8, r8, r7")
	g.l("\tandi r3, r8, %d", hashSize-1)
	// Dictionary probe.
	g.l("\tld r9, htab(r3)")   // dictionary code: unpredictable
	g.l("\tld r10, codes(r3)") // stored symbol: unpredictable
	g.l("\tbeq r10, r7, hit")
	// Miss: install new code, emit literal.
	g.l("\tst r7, codes(r3)")
	g.l("\tst r4, htab(r3)")
	g.l("\taddi r4, r4, 1") // next code: stride-predictable
	g.l("\tst r7, output(r5)")
	g.l("\taddi r5, r5, 1") // output cursor: stride-predictable
	g.l("\tjmp next")
	g.label("hit")
	// Hit: emit dictionary code, bump statistic.
	g.l("\tst r9, output(r5)")
	g.l("\taddi r5, r5, 1")
	g.l("\taddi r6, r6, 1") // hit counter: stride per dynamic path
	g.label("next")
	g.l("\taddi r1, r1, 1") // input cursor: stride-predictable
	g.l("\tblt r1, r2, loop")
	// Checksum pass over the output, so the compression result is used.
	g.l("\tldi r1, 0")
	g.l("\tldi r11, 0")
	g.label("ck")
	g.l("\tld r12, output(r1)")
	g.l("\tadd r11, r11, r12") // accumulator: data-dependent
	g.l("\taddi r1, r1, 1")
	g.l("\tblt r1, r5, ck")
	g.l("\tst r11, output(zero)")
	g.l("\thalt")
	return g.String()
}
