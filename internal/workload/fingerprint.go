package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/program"
)

// This file defines the exported fingerprint keys the serving layer caches
// on. A fingerprint is a stable content hash of an executable image — two
// programs with identical text, data, entry point and symbols (directives
// included) share one fingerprint, whether they arrived as a named synthetic
// benchmark, an assembled source upload, or a .vpimg file. The vpserve
// result/trace caches are keyed by it, so identical work is deduplicated
// regardless of how the program reached the server.

// Fingerprint returns the content hash of a program image as a short hex
// string. It is deterministic across processes (it hashes the canonical
// binary serialization, the same bytes program.Save writes).
func Fingerprint(p *program.Program) (string, error) {
	h := sha256.New()
	if err := program.Write(h, p); err != nil {
		return "", fmt.Errorf("workload: fingerprint %s: %w", p.Name, err)
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// BenchKey is the canonical cache key of one (benchmark, input) pair —
// cheaper than building the program when only the key is needed, and
// guaranteed consistent with Build's own memoization key.
func BenchKey(name string, in Input) string {
	return fmt.Sprintf("bench/%s/%s", name, in)
}

// fpCache memoizes content fingerprints per built image: hashing a large
// image is not free, and the server computes the same fingerprint on every
// request that names a benchmark.
var fpCache sync.Map // *program.Program → string

// FingerprintOf is Fingerprint memoized by image identity. It must only be
// used with shared, immutable images (anything Build returns or the server
// registry holds).
func FingerprintOf(p *program.Program) (string, error) {
	if fp, ok := fpCache.Load(p); ok {
		return fp.(string), nil
	}
	fp, err := Fingerprint(p)
	if err != nil {
		return "", err
	}
	fpCache.Store(p, fp)
	return fp, nil
}
