package workload

func init() {
	register(Spec{
		Name: "gcc",
		Description: "Compiler middle-end in the style of 126.gcc: a " +
			"dispatch loop walks a stream of IR nodes and jumps through a " +
			"table of per-opcode handler blocks (constant folding, " +
			"strength reduction, flag analysis…). With well over a " +
			"hundred distinct handlers, the static working set of " +
			"value-producing instructions far exceeds a 512-entry " +
			"prediction table, so under hardware-only classification the " +
			"unpredictable majority keeps evicting the predictable " +
			"minority — the table-pollution scenario the paper's " +
			"profile-guided allocation wins (Section 5.2).",
		Source: gccSource,
	})
}

func gccSource(in Input) string {
	g := newGen(in.Seed ^ 0xCC)
	const handlers = 120
	irLen := 20000 * in.scale()

	g.l("; gcc: IR walker with per-opcode handlers (%s)", in)
	g.l(".data")
	// IR stream: (opcode, operand) pairs. Opcodes are Zipf-flavored so
	// some handlers are hot and others cold, like real opcode mixes.
	g.label("ir")
	for i := 0; i < irLen; i++ {
		var op int64
		if g.rng.intn(3) > 0 {
			op = g.rng.intn(12) // hot dozen
		} else {
			op = g.rng.intn(handlers)
		}
		g.l("\t.word %d", op)
	}
	g.label("iroperand")
	for i := 0; i < irLen; i++ {
		g.l("\t.word %d", g.rng.intn(1<<30))
	}
	g.label("dispatch")
	for k := 0; k < handlers; k++ {
		g.l("\t.word h%d", k)
	}
	g.space("folded", irLen)
	g.space("handlerstats", handlers)
	g.l("totals:")
	g.l("\t.space 4")

	g.l(".text")
	g.label("main")
	g.l("\tldi r1, 0") // IR cursor
	g.l("\tldi r2, %d", irLen)
	g.l("\tldi r3, 0") // folded-node count
	g.l("\tldi r4, 0") // checksum accumulator
	g.label("walk")
	g.l("\tld r5, ir(r1)")        // opcode: data-dependent
	g.l("\tld r6, iroperand(r1)") // operand: unpredictable
	g.l("\tld r7, dispatch(r5)")  // handler address: data-dependent
	g.l("\tjalr ra, r7")
	g.l("\taddi r1, r1, 1") // cursor: stride
	g.l("\tblt r1, r2, walk")
	g.l("\tst r3, totals(zero)")
	g.l("\tst r4, totals+1(zero)")
	g.l("\thalt")

	// Handler blocks. Each has: immediate constants (always the same
	// value → perfectly predictable after warm-up), a private invocation
	// counter (stride-1), and operand field extraction/arithmetic
	// (unpredictable). The exact shape varies per handler so the static
	// footprint is genuinely diverse.
	for k := 0; k < handlers; k++ {
		mask := (int64(1) << (4 + g.rng.intn(16))) - 1
		shift := g.rng.intn(24)
		bias := g.rng.intn(4096)
		g.label("h%d", k)
		// Constant pool load: last-value predictable.
		g.l("\tldi r10, %d", bias)
		// Field extraction from the operand: unpredictable.
		g.l("\tsrli r11, r6, %d", shift)
		g.l("\tandi r11, r11, %d", mask)
		switch k % 5 {
		case 0: // constant folding
			g.l("\tadd r12, r11, r10")
			g.l("\tst r12, folded(r1)")
			g.l("\taddi r3, r3, 1")
		case 1: // strength reduction: multiply becomes shift
			g.l("\tslli r12, r11, 1")
			g.l("\tadd r4, r4, r12")
		case 2: // range check
			g.l("\tslt r12, r11, r10")
			g.l("\tadd r3, r3, r12")
		case 3: // flag analysis: xor-mix into checksum
			g.l("\txor r12, r11, r10")
			g.l("\tadd r4, r4, r12")
		case 4: // dead-code marker: write sentinel
			g.l("\tor r12, r11, r10")
			g.l("\tst r12, folded(r1)")
		}
		// Per-handler statistics: stride-predictable.
		g.l("\tld r13, handlerstats+%d(zero)", k)
		g.l("\taddi r13, r13, 1")
		g.l("\tst r13, handlerstats+%d(zero)", k)
		g.l("\tjalr zero, ra")
	}
	return g.String()
}
