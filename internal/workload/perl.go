package workload

func init() {
	register(Spec{
		Name: "perl",
		Description: "Interpreter-driven anagram search in the style of " +
			"134.perl's primes/anagram scripts: a bytecode loop executes " +
			"a scripted word-processing program — hashing dictionary " +
			"words into letter signatures, bucketing them, and comparing " +
			"signatures within buckets — through dozens of per-opcode " +
			"runtime-service blocks. Interpreter overhead (PC, opcode " +
			"fetch, bookkeeping) is highly predictable, string contents " +
			"are not; the static footprint is mid-sized, giving moderate " +
			"table pressure where profiling already pays off (the paper " +
			"finds gains at thresholds 70–90%).",
		Source: perlSource,
	})
}

func perlSource(in Input) string {
	g := newGen(in.Seed ^ 0xBE)
	const words = 256
	const wordLen = 12
	const services = 64
	passes := 5 * in.scale()

	g.l("; perl: anagram search under a bytecode interpreter (%s)", in)
	g.l(".data")
	// Dictionary: words of lowercase letters with a skewed distribution.
	g.label("dict")
	for w := 0; w < words; w++ {
		for c := 0; c < wordLen; c++ {
			g.l("\t.word %d", 'a'+g.rng.intn(26)*g.rng.intn(2)) // skew toward 'a'
		}
	}
	g.space("sig", words)  // letter signature per word
	g.space("buckets", 64) // signature-hash buckets (counts)
	g.space("anagrams", 2) // result: pairs found, comparisons
	g.label("servicetab")
	for k := 0; k < services; k++ {
		g.l("\t.word svc%d", k)
	}
	g.space("svcstats", services)

	g.l(".text")
	g.label("main")
	g.l("\tldi r1, 0") // pass counter
	g.l("\tldi r2, %d", passes)
	g.l("\tldi r26, %d", wordLen)
	g.l("\tldi r18, 0")
	g.l("\tldi r19, 0")
	g.label("pass")

	// Stage 1: signature each word (FNV-flavored fold over letters).
	g.l("\tldi r3, 0") // word index
	g.l("\tldi r4, %d", words)
	g.label("sigword")
	g.l("\tmuli r5, r3, %d", wordLen)
	g.l("\tldi r6, 0") // char index
	g.l("\tldi r7, 0") // signature accumulator
	g.label("sigchar")
	g.l("\tadd r8, r5, r6")
	g.l("\tld r9, dict(r8)") // letter: data-dependent
	g.l("\tmuli r10, r7, 31")
	g.l("\tadd r7, r10, r9") // rolling hash: unpredictable
	g.l("\taddi r6, r6, 1")  // char cursor: stride
	g.l("\tblt r6, r26, sigchar")
	g.l("\tst r7, sig(r3)")
	// Bucket the signature and dispatch a runtime service on it, the way
	// the interpreter calls built-ins per value class.
	g.l("\tandi r11, r7, 63")
	g.l("\tld r12, buckets(r11)")
	g.l("\taddi r12, r12, 1")
	g.l("\tst r12, buckets(r11)")
	g.l("\tandi r13, r3, %d", services-1) // dispatch by word class (index)
	g.l("\tld r14, servicetab(r13)")
	g.l("\tjalr ra, r14")
	g.l("\taddi r3, r3, 1") // word cursor: stride
	g.l("\tblt r3, r4, sigword")

	// Stage 2: anagram comparisons — each word against the following
	// window of candidates (bucketing already narrowed the search).
	window := 17
	g.l("\tldi r3, 0")
	g.label("cmpout")
	g.l("\taddi r15, r3, 1")
	g.l("\taddi r24, r3, %d", window)
	g.l("\tslt r25, r24, r4")
	g.l("\tbne r25, zero, cmpin")
	g.l("\tadd r24, r4, zero") // clamp the window at the dictionary end
	g.label("cmpin")
	g.l("\tbge r15, r24, cmpdone")
	g.l("\tld r16, sig(r3)")
	g.l("\tld r17, sig(r15)")
	g.l("\taddi r18, r18, 1") // comparison counter: stride
	g.l("\tbne r16, r17, cmpnext")
	g.l("\taddi r19, r19, 1") // anagram-pair counter
	g.label("cmpnext")
	g.l("\taddi r15, r15, 1")
	g.l("\tjmp cmpin")
	g.label("cmpdone")
	g.l("\taddi r3, r3, 1")
	g.l("\tblt r3, r4, cmpout")
	g.l("\tst r18, anagrams+1(zero)")
	g.l("\tst r19, anagrams(zero)")

	g.l("\taddi r1, r1, 1")
	g.l("\tblt r1, r2, pass")
	g.l("\thalt")

	// Runtime services: small distinct blocks (string-length class,
	// case folding, counters…), each with predictable constants and
	// counters plus an unpredictable mix of the signature.
	for k := 0; k < services; k++ {
		c1 := g.rng.intn(1 << 12)
		sh := g.rng.intn(10)
		g.label("svc%d", k)
		g.l("\tldi r20, %d", c1) // constant: predictable
		g.l("\tsrli r21, r7, %d", sh)
		g.l("\txor r22, r21, r20") // mixed signature: unpredictable
		g.l("\tandi r22, r22, 255")
		g.l("\tld r23, svcstats+%d(zero)", k)
		g.l("\taddi r23, r23, 1") // service counter: stride
		g.l("\tst r23, svcstats+%d(zero)", k)
		g.l("\tjalr zero, ra")
	}
	return g.String()
}
