package workload

func init() {
	register(Spec{
		Name: "ijpeg",
		Description: "Image-compression kernel in the style of 132.ijpeg: " +
			"8×8 blocks of a pseudo-random image go through a fixed-point " +
			"separable transform (unrolled butterfly rows), quantization " +
			"by a constant table, and zig-zag run-length counting. The " +
			"unrolled transform gives a compact but computation-dense " +
			"static footprint whose accumulators are data-dependent, " +
			"while the quantizer divisors and block cursors are perfectly " +
			"predictable — a small working set, like the paper's " +
			"compress/ijpeg/mgrid cluster that profiling cannot improve " +
			"much further.",
		Source: ijpegSource,
	})
}

func ijpegSource(in Input) string {
	g := newGen(in.Seed ^ 0x3E)
	blocks := 220 * in.scale()
	const blockSize = 64

	g.l("; ijpeg: fixed-point block transform (%s)", in)
	g.l(".data")
	// Image: smooth-ish pseudo-random pixels (neighbor-correlated).
	g.label("image")
	cur := g.rng.intn(256)
	for i := 0; i < blocks*blockSize; i++ {
		cur = (cur + g.rng.intn(31) - 15 + 256) % 256
		g.l("\t.word %d", cur)
	}
	// Quantization table: constants reloaded per block (last-value 100%).
	g.label("quant")
	for i := 0; i < 8; i++ {
		g.l("\t.word %d", 8+g.rng.intn(24))
	}
	g.space("coeff", blockSize)
	g.space("out", blocks*blockSize)
	g.l("runstats:")
	g.l("\t.space 2")

	g.l(".text")
	g.label("main")
	g.l("\tldi r1, 0") // block cursor (word offset)
	g.l("\tldi r2, %d", blocks*blockSize)
	g.l("\tldi r3, 0") // zero-coefficient run statistic
	g.label("block")
	// Row transform, unrolled over the 8 rows: butterfly adds/subs on
	// pixel pairs. Data-dependent throughout.
	for row := 0; row < 8; row++ {
		base := row * 8
		g.l("\tld r10, image+%d(r1)", base)
		g.l("\tld r11, image+%d(r1)", base+7)
		g.l("\tld r12, image+%d(r1)", base+3)
		g.l("\tld r13, image+%d(r1)", base+4)
		g.l("\tadd r14, r10, r11") // s07
		g.l("\tsub r15, r10, r11") // d07
		g.l("\tadd r16, r12, r13") // s34
		g.l("\tsub r17, r12, r13") // d34
		g.l("\tadd r18, r14, r16") // DC contribution
		g.l("\tsub r19, r14, r16") // AC contribution
		g.l("\tmuli r20, r15, 3")  // rotation (fixed-point by constants)
		g.l("\tmuli r21, r17, 5")
		g.l("\tadd r22, r20, r21")
		g.l("\tst r18, coeff+%d(zero)", base)
		g.l("\tst r19, coeff+%d(zero)", base+1)
		g.l("\tst r22, coeff+%d(zero)", base+2)
	}
	// Quantize + count zero runs over the produced coefficients.
	g.l("\tldi r4, 0") // coefficient index
	g.l("\tldi r5, %d", blockSize)
	g.label("quantloop")
	g.l("\tld r10, coeff(r4)")
	g.l("\tandi r11, r4, 7")
	g.l("\tld r12, quant(r11)") // divisor: cycles through 8 constants
	g.l("\tdiv r13, r10, r12")  // quantized coefficient: data-dependent
	g.l("\tadd r14, r1, r4")
	g.l("\tst r13, out(r14)")
	g.l("\tbne r13, zero, qnext")
	g.l("\taddi r3, r3, 1") // zero-run statistic
	g.label("qnext")
	g.l("\taddi r4, r4, 1") // stride
	g.l("\tblt r4, r5, quantloop")
	g.l("\taddi r1, r1, %d", blockSize) // block cursor: stride 64
	g.l("\tblt r1, r2, block")
	g.l("\tst r3, runstats(zero)")
	g.l("\thalt")
	return g.String()
}
