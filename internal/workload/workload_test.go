package workload

import (
	"testing"

	"repro/internal/profiler"
	"repro/internal/trace"
)

// TestAllBenchmarksRun executes every benchmark at scale 1 and checks the
// basic health properties the experiments rely on: the program assembles,
// halts within budget, executes a substantial number of instructions, and
// produces a meaningful population of value-producing instructions.
func TestAllBenchmarksRun(t *testing.T) {
	for _, name := range AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var cnt trace.Counter
			col := profiler.NewCollector()
			n, err := BuildAndRun(name, Input{Seed: 1}, &cnt, col)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if n < 50_000 {
				t.Errorf("only %d dynamic instructions; workloads should be substantial", n)
			}
			if n > 5_000_000 {
				t.Errorf("%d dynamic instructions; workload too heavy for the experiment suite", n)
			}
			if cnt.ValueProds < n/5 {
				t.Errorf("only %d/%d instructions produce values", cnt.ValueProds, n)
			}
			if col.NumInstructions() < 10 {
				t.Errorf("only %d static value-producing instructions profiled", col.NumInstructions())
			}
			t.Logf("%s: %d dynamic instructions, %d static value producers",
				name, n, col.NumInstructions())
		})
	}
}

// TestDifferentSeedsDifferentData checks that distinct inputs genuinely
// produce different program data (different execution), not just a reused
// image — otherwise the Section 4 input-stability study would be vacuous.
func TestDifferentSeedsDifferentData(t *testing.T) {
	for _, name := range AllNames() {
		p1, err := Build(name, Input{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p2, err := Build(name, Input{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p1.Data) != len(p2.Data) {
			continue // differing layout is certainly different data
		}
		same := true
		for i := range p1.Data {
			if p1.Data[i] != p2.Data[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical data segments", name)
		}
	}
}

// TestBuildCacheReturnsSameImage verifies the memoization contract.
func TestBuildCacheReturnsSameImage(t *testing.T) {
	a, err := Build("compress", Input{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("compress", Input{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Build did not return the cached image for identical inputs")
	}
	c, err := Build("compress", Input{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("Build returned the same image for different seeds")
	}
}

// TestUnknownBenchmark checks the error path.
func TestUnknownBenchmark(t *testing.T) {
	if _, err := Build("nonesuch", Input{}); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

// TestNamesOrder checks the paper-order listing and primary/secondary split.
func TestNamesOrder(t *testing.T) {
	want := []string{"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex", "mgrid"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if len(AllNames()) != len(want)+4 {
		t.Fatalf("AllNames() = %v, want 4 secondary FP benchmarks appended", AllNames())
	}
}

// TestFPWorkloadsUsePhases verifies the FP benchmarks mark an initialization
// and a computation phase (Table 2.1 reports them separately).
func TestFPWorkloadsUsePhases(t *testing.T) {
	for _, name := range AllNames() {
		spec, _ := ByName(name)
		phases := map[int]bool{}
		_, err := BuildAndRun(name, Input{Seed: 3}, trace.ConsumerFunc(func(r *trace.Record) {
			if r.HasDest {
				phases[r.Phase] = true
			}
		}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.FP && (!phases[0] || !phases[1]) {
			t.Errorf("%s: FP benchmark should produce values in phases 0 and 1, got %v", name, phases)
		}
		if !spec.FP && phases[1] {
			t.Errorf("%s: integer benchmark unexpectedly uses phase 1", name)
		}
	}
}
