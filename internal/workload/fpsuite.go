package workload

import "fmt"

// The secondary floating-point benchmarks. Table 2.1 and figure 2.2 of the
// paper report the whole Spec-fp95 suite; the Section 4/5 experiments use
// only mgrid. These four smaller kernels fill out the FP rows with distinct
// value-predictability mixes.

func init() {
	register(Spec{
		Name: "tomcatv", FP: true, Secondary: true,
		Description: "Mesh-generation kernel in the style of 101.tomcatv: " +
			"coupled x/y coordinate arrays relaxed with neighbor " +
			"averages; most FP values drift every sweep (unpredictable), " +
			"relaxation constants reload unchanged (last-value).",
		Source: func(in Input) string { return fpKernel(in, "tomcatv", 0x7C) },
	})
	register(Spec{
		Name: "swim", FP: true, Secondary: true,
		Description: "Shallow-water stencil in the style of 102.swim: " +
			"three field arrays updated by finite differences with " +
			"stride-predictable index streams.",
		Source: func(in Input) string { return fpKernel(in, "swim", 0x51) },
	})
	register(Spec{
		Name: "su2cor", FP: true, Secondary: true,
		Description: "Lattice gather kernel in the style of 103.su2cor: " +
			"random-site gathers make even the load addresses " +
			"data-dependent, the least predictable FP workload.",
		Source: func(in Input) string { return fpKernel(in, "su2cor", 0x52) },
	})
	register(Spec{
		Name: "hydro2d", FP: true, Secondary: true,
		Description: "Hydrodynamics flux kernel in the style of " +
			"104.hydro2d: division-heavy flux updates over a cell array.",
		Source: func(in Input) string { return fpKernel(in, "hydro2d", 0x2D) },
	})
}

// fpKernel builds a two-phase FP benchmark: phase 0 initializes the arrays
// from an integer recurrence (standing in for reading the input deck), phase
// 1 runs the kernel-specific sweeps.
func fpKernel(in Input, kind string, salt uint64) string {
	g := newGen(in.Seed ^ salt)
	const n = 1500
	sweeps := 10 * in.scale()

	g.l("; %s: two-phase FP kernel (%s)", kind, in)
	g.l(".data")
	g.space("a", n+2)
	g.space("b", n+2)
	g.space("c", n+2)
	g.label("coef")
	g.l("\t.float %g, %g, 0.5, 2.0", 0.3+0.4*g.rng.float(), 0.1+0.2*g.rng.float())
	g.l("acc:")
	g.l("\t.space 1")
	g.l("nparam:")
	g.l("\t.word %d", n)
	if kind == "su2cor" {
		g.label("sites")
		for i := 0; i < n; i++ {
			g.l("\t.word %d", 1+g.rng.intn(n))
		}
	}

	g.l(".text")
	g.label("main")
	g.l("\tphase 0")
	g.l("\tldi r1, 1")
	g.l("\tldi r2, %d", n)
	g.l("\tldi r3, %d", g.rng.intn(1<<30)|1)
	g.l("\tldi r5, %d", 1<<30)
	g.l("\titof f9, r5")
	g.label("init")
	// Spill reloads + invariant recomputation: the predictable work a
	// 1997-era compiler emits in every loop body.
	g.l("\tld r8, nparam(zero)")
	g.l("\tfld f14, coef+3(zero)")
	g.l("\tfmul f15, f14, f14")
	g.l("\tmuli r4, r3, 1103515245")
	g.l("\taddi r3, r4, 12345")
	g.l("\tandi r3, r3, %d", 1<<30-1)
	g.l("\titof f1, r3")
	g.l("\tfdiv f2, f1, f9")
	g.l("\tfst f2, a(r1)")
	g.l("\tfmul f3, f2, f2")
	g.l("\tfst f3, b(r1)")
	g.l("\taddi r1, r1, 1")
	g.l("\tbge r2, r1, init")

	g.l("\tphase 1")
	g.l("\tldi r9, 0")
	g.l("\tldi r10, %d", sweeps)
	g.label("sweep")
	g.l("\tldi r1, 1")
	g.l("\tfld f13, acc(zero)")
	g.label("body")
	g.l("\tfld f10, coef(zero)") // spill reloads: last-value 100%
	g.l("\tfld f11, coef+1(zero)")
	g.l("\tfld f12, coef+2(zero)")
	g.l("\tfmul f14, f10, f11")  // invariant product: last-value 100%
	g.l("\tfadd f15, f12, f14")  // invariant sum: last-value 100%
	g.l("\tld r8, nparam(zero)") // bound reload (spill): last-value 100%
	switch kind {
	case "tomcatv":
		// Coupled relaxation of a and b.
		g.l("\tfld f1, a-1(r1)")
		g.l("\tfld f2, a+1(r1)")
		g.l("\tfld f3, b(r1)")
		g.l("\tfadd f4, f1, f2")
		g.l("\tfmul f5, f4, f12") // neighbor average
		g.l("\tfmul f6, f3, f10")
		g.l("\tfadd f7, f5, f6")
		g.l("\tfst f7, a(r1)")
		g.l("\tfmul f8, f7, f11")
		g.l("\tfst f8, b(r1)")
	case "swim":
		// Wave step across three fields.
		g.l("\tfld f1, a(r1)")
		g.l("\tfld f2, b-1(r1)")
		g.l("\tfld f3, b+1(r1)")
		g.l("\tfsub f4, f3, f2")
		g.l("\tfmul f5, f4, f10")
		g.l("\tfadd f6, f1, f5")
		g.l("\tfst f6, c(r1)")
		g.l("\tfmul f7, f6, f11")
		g.l("\tfst f7, a(r1)")
	case "su2cor":
		// Gather from a random site, then local update.
		g.l("\tld r4, sites-1(r1)") // site index: unpredictable value
		g.l("\tfld f1, a(r4)")      // gathered value: unpredictable
		g.l("\tfld f2, b(r1)")
		g.l("\tfmul f3, f1, f2")
		g.l("\tfadd f13, f13, f3") // serial accumulation
		g.l("\tfst f3, c(r1)")
	case "hydro2d":
		// Flux with division.
		g.l("\tfld f1, a(r1)")
		g.l("\tfld f2, b(r1)")
		g.l("\tfadd f3, f2, f12") // denominator bounded away from 0
		g.l("\tfdiv f4, f1, f3")
		g.l("\tfmul f5, f4, f10")
		g.l("\tfst f5, c(r1)")
		g.l("\tfadd f13, f13, f5")
	default:
		panic(fmt.Sprintf("workload: unknown fp kernel %q", kind))
	}
	g.l("\taddi r1, r1, 1") // index: stride
	g.l("\tbge r2, r1, body")
	g.l("\tfst f13, acc(zero)")
	g.l("\taddi r9, r9, 1")
	g.l("\tblt r9, r10, sweep")
	g.l("\thalt")
	return g.String()
}
