package workload

func init() {
	register(Spec{
		Name: "go",
		Description: "Game-playing position evaluator in the style of " +
			"099.go: a scan over a Go board applies dozens of distinct " +
			"pattern matchers, each a separate code block with its own " +
			"loads, arithmetic and statistics. The static working set of " +
			"value-producing instructions is large (hundreds of " +
			"instructions), most of them data-dependent on board contents " +
			"— the combination of table pressure and low accuracy that " +
			"makes 099.go a showcase for profile-guided allocation " +
			"filtering (figures 5.3/5.4).",
		Source: goSource,
	})
}

func goSource(in Input) string {
	g := newGen(in.Seed ^ 0x60)
	const boardSide = 19
	const boardSize = boardSide*boardSide + 64 // margin for pattern offsets
	const patterns = 56
	sweeps := 2 * in.scale()

	g.l("; go: board pattern evaluator (%s)", in)
	g.l(".data")
	// Board: 0 empty, 1 black, 2 white — seed-dependent position.
	g.label("board")
	for i := 0; i < boardSize; i++ {
		v := int64(0)
		switch g.rng.intn(3) {
		case 1:
			v = 1
		case 2:
			v = 2
		}
		g.l("\t.word %d", v)
	}
	g.space("influence", boardSize)
	g.space("patstats", patterns)
	g.l("score:")
	g.l("\t.space 2")
	g.l("examined:")
	g.l("\t.space 1")

	g.l(".text")
	g.label("main")
	g.l("\tldi r25, 0") // sweep counter
	g.l("\tldi r26, %d", sweeps)
	g.label("sweep")
	g.l("\tldi r20, 0") // board position
	g.l("\tldi r21, 0") // sweep score accumulator
	g.l("\tldi r23, %d", boardSide*boardSide)
	g.label("scan")
	for k := 0; k < patterns; k++ {
		g.l("\tjal ra, pat%d", k)
	}
	// Influence map update: data-dependent store per position.
	g.l("\tld r22, board(r20)")
	g.l("\tadd r22, r22, r21")
	g.l("\tst r22, influence(r20)")
	g.l("\taddi r20, r20, 1") // position cursor: stride-predictable
	g.l("\tblt r20, r23, scan")
	g.l("\tst r21, score(zero)")
	g.l("\taddi r25, r25, 1")
	g.l("\tblt r25, r26, sweep")
	g.l("\thalt")

	// Pattern blocks: each examines a fixed constellation of cells
	// around the current position and contributes to the score. The
	// loads and the score updates are data-dependent (unpredictable);
	// each block's invocation counter is stride-1 (predictable) — the
	// bimodal mix of figure 2.2.
	for k := 0; k < patterns; k++ {
		off1 := g.rng.intn(40)
		off2 := g.rng.intn(40)
		off3 := g.rng.intn(40)
		weight := g.rng.intn(5) + 1
		g.label("pat%d", k)
		g.l("\tld r10, board+%d(r20)", off1)
		g.l("\tld r11, board+%d(r20)", off2)
		switch k % 4 {
		case 0: // same-color pair
			g.l("\tbne r10, r11, pat%d_out", k)
			g.l("\tmuli r12, r10, %d", weight)
			g.l("\tadd r21, r21, r12")
		case 1: // capture shape: third stone differs
			g.l("\tld r12, board+%d(r20)", off3)
			g.l("\tadd r13, r10, r11")
			g.l("\tbeq r13, r12, pat%d_out", k)
			g.l("\tslt r14, r12, r13")
			g.l("\tadd r21, r21, r14")
		case 2: // territory: weighted sum
			g.l("\tmuli r12, r10, %d", weight)
			g.l("\tmuli r13, r11, %d", weight+1)
			g.l("\tadd r14, r12, r13")
			g.l("\tadd r21, r21, r14")
		case 3: // liberty-ish: xor mix and threshold
			g.l("\txor r12, r10, r11")
			g.l("\tslti r13, r12, 2")
			g.l("\tadd r21, r21, r13")
		}
		g.label("pat%d_out", k)
		// Per-pattern statistics: the predictable minority.
		g.l("\tld r15, patstats+%d(zero)", k)
		g.l("\taddi r15, r15, 1")
		g.l("\tst r15, patstats+%d(zero)", k)
		if k%5 < 2 {
			// Shared evaluator bookkeeping: a stride-predictable
			// serial chain through memory.
			g.l("\tld r16, examined(zero)")
			g.l("\taddi r16, r16, 1")
			g.l("\tst r16, examined(zero)")
		}
		g.l("\tjalr zero, ra")
	}
	return g.String()
}
