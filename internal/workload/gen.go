package workload

import (
	"fmt"
	"strings"
)

// gen accumulates assembly text. Workload sources are generated rather than
// fixed so that (a) input data differs per seed and (b) benchmarks with
// large static working sets (gcc, go, vortex, perl) can emit hundreds of
// distinct code blocks, reproducing the instruction-footprint pressure that
// drives the paper's finite-table results.
type gen struct {
	b   strings.Builder
	rng rng
}

func newGen(seed uint64) *gen {
	return &gen{rng: rng{state: seed | 1}}
}

// l emits one line of assembly.
func (g *gen) l(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// label emits a label definition.
func (g *gen) label(name string, args ...any) {
	fmt.Fprintf(&g.b, name+":\n", args...)
}

func (g *gen) String() string { return g.b.String() }

// words emits a named .data array of n pseudo-random words in [0, mod).
func (g *gen) words(name string, n int, mod int64) {
	g.label(name)
	for i := 0; i < n; i++ {
		g.l("\t.word %d", g.rng.intn(mod))
	}
}

// space emits a named zeroed .data array.
func (g *gen) space(name string, n int) {
	g.label(name)
	g.l("\t.space %d", n)
}

// floats emits a named .data array of n pseudo-random float64 values in
// [0, scale).
func (g *gen) floats(name string, n int, scale float64) {
	g.label(name)
	for i := 0; i < n; i++ {
		g.l("\t.float %g", g.rng.float()*scale)
	}
}

// rng is a SplitMix64 generator: deterministic, seedable, stdlib-free.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// float returns a value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
