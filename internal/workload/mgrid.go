package workload

func init() {
	register(Spec{
		Name: "mgrid",
		FP:   true,
		Description: "Multigrid-flavored FP solver in the style of " +
			"107.mgrid: an initialization phase (phase 0) fills the fine " +
			"grid from a seed-dependent integer recurrence, then the " +
			"computation phase (phase 1) runs smoothing sweeps on two " +
			"grid levels with a restriction step between them — " +
			"coefficient reloads are last-value-predictable, index " +
			"arithmetic is stride-predictable, grid values are not. A " +
			"small static working set, like the real mgrid.",
		Source: mgridSource,
	})
}

func mgridSource(in Input) string {
	g := newGen(in.Seed ^ 0x36)
	const fine = 2048
	const coarse = fine / 2
	sweeps := 8 * in.scale()

	g.l("; mgrid: two-level FP smoothing (%s)", in)
	g.l(".data")
	g.space("u", fine+2)    // fine grid (+halo)
	g.space("v", fine+2)    // smoothed fine grid
	g.space("uc", coarse+2) // coarse grid
	g.label("coef")
	g.l("\t.float 0.5, 0.25, 0.125, %g", 0.05+0.1*g.rng.float())
	g.l("resid:")
	g.l("\t.space 1")
	g.l("nparam:")
	g.l("\t.word %d", fine)

	g.l(".text")
	g.label("main")
	g.l("\tphase 0")
	// Initialization: integer LCG drives the grid contents, standing in
	// for reading the input deck. LCG values are data-dependent chains.
	g.l("\tldi r1, 1")
	g.l("\tldi r2, %d", fine)
	g.l("\tldi r3, %d", g.rng.intn(1<<30)|1) // LCG state, seed-dependent
	g.label("initloop")
	// Spilled-constant reloads and loop-invariant recomputation, as a
	// 1997-era compiler emits: perfectly last-value-predictable work.
	g.l("\tld r6, nparam(zero)")
	g.l("\tfld f8, coef+2(zero)")
	g.l("\tfmul f9, f8, f8")
	g.l("\tmuli r4, r3, 1103515245")
	g.l("\taddi r3, r4, 12345")
	g.l("\tandi r3, r3, %d", 1<<30-1)
	g.l("\titof f1, r3")
	g.l("\tldi r5, %d", 1<<30)
	g.l("\titof f2, r5")
	g.l("\tfdiv f3, f1, f2") // value in [0,1): unpredictable
	g.l("\tfst f3, u(r1)")
	g.l("\taddi r1, r1, 1") // index: stride
	g.l("\tbge r2, r1, initloop")

	g.l("\tphase 1")
	g.l("\tldi r9, 0") // sweep counter
	g.l("\tldi r10, %d", sweeps)
	g.label("sweep")
	// Fine-grid smoothing: v[i] = c0*u[i] + c1*(u[i-1]+u[i+1]).
	g.l("\tldi r1, 1")
	g.label("smooth")
	g.l("\tfld f10, coef(zero)")   // c0 reload (spill): last-value 100%
	g.l("\tfld f11, coef+1(zero)") // c1 reload (spill): last-value 100%
	g.l("\tfmul f14, f10, f11")    // invariant product: last-value 100%
	g.l("\tfadd f15, f10, f14")    // invariant sum: last-value 100%
	g.l("\tld r8, nparam(zero)")   // bound reload (spill): last-value 100%
	g.l("\tfld f1, u(r1)")
	g.l("\tfld f2, u-1(r1)")
	g.l("\tfld f3, u+1(r1)")
	g.l("\tfadd f4, f2, f3")
	g.l("\tfmul f5, f11, f4")
	g.l("\tfmul f6, f10, f1")
	g.l("\tfadd f7, f5, f6") // smoothed value: data-dependent
	g.l("\tfst f7, v(r1)")
	g.l("\taddi r1, r1, 1") // stride
	g.l("\tbge r2, r1, smooth")
	// Restriction to the coarse grid: uc[j] = 0.5*(v[2j] + v[2j+1]).
	g.l("\tldi r1, 1")
	g.l("\tldi r6, %d", coarse)
	g.label("restrict")
	g.l("\tfld f12, coef+2(zero)") // reload (spill): last-value 100%
	g.l("\tslli r7, r1, 1")        // 2j: stride 2
	g.l("\tfld f1, v(r7)")
	g.l("\tfld f2, v+1(r7)")
	g.l("\tfadd f3, f1, f2")
	g.l("\tfmul f4, f3, f12")
	g.l("\tfst f4, uc(r1)")
	g.l("\taddi r1, r1, 1")
	g.l("\tbge r6, r1, restrict")
	// Residual: accumulate |v-u| into a running FP sum and copy v→u.
	g.l("\tldi r1, 1")
	g.l("\tfld f13, resid(zero)")
	g.label("resloop")
	g.l("\tfld f1, v(r1)")
	g.l("\tfld f2, u(r1)")
	g.l("\tfsub f3, f1, f2")
	g.l("\tfabs f4, f3")
	g.l("\tfadd f13, f13, f4") // serial FP accumulation chain
	g.l("\tfst f1, u(r1)")
	g.l("\taddi r1, r1, 1")
	g.l("\tbge r2, r1, resloop")
	g.l("\tfst f13, resid(zero)")
	g.l("\taddi r9, r9, 1") // sweep counter: stride
	g.l("\tblt r9, r10, sweep")
	g.l("\thalt")
	return g.String()
}
