package workload

func init() {
	register(Spec{
		Name: "li",
		Description: "List-processing kernel in the style of the 130.li " +
			"Lisp interpreter: cons cells (car/cdr pairs) in a heap, with " +
			"a battery of list primitives (length, sum, max, nth) walking " +
			"both a sequentially allocated list (cdr pointers advance by " +
			"a constant — stride-predictable, like freshly consed lists) " +
			"and a shuffled list (pointer chasing — unpredictable). " +
			"Interpretation overhead supplies the predictable counters; " +
			"list contents supply the unpredictable majority.",
		Source: liSource,
	})
}

func liSource(in Input) string {
	g := newGen(in.Seed ^ 0x11)
	const cells = 600
	ops := 35 * in.scale() // interpreter op batches

	// Heap layout: cell i occupies words heap[2i] (car) and heap[2i+1]
	// (cdr = word offset of next cell within heap, 0 terminates — cell 0
	// is the dedicated nil cell).
	type cell struct{ car, cdr int64 }
	heap := make([]cell, cells)
	// Sequential list: cells 1..seqLen in order; cdr stride is constant 2.
	seqLen := cells/2 - 1
	for i := 1; i <= seqLen; i++ {
		heap[i].car = g.rng.intn(1000)
		if i < seqLen {
			heap[i].cdr = int64(2 * (i + 1))
		}
	}
	// Shuffled list: cells 300..599 linked in random permutation order.
	perm := make([]int, cells/2)
	for i := range perm {
		perm[i] = cells/2 + i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := g.rng.intn(int64(i + 1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i, ci := range perm {
		heap[ci].car = g.rng.intn(1000)
		if i < len(perm)-1 {
			heap[ci].cdr = int64(2 * perm[i+1])
		}
	}

	g.l("; li: cons-cell list primitives (%s)", in)
	g.l(".data")
	g.label("heap")
	for _, c := range heap {
		g.l("\t.word %d, %d", c.car, c.cdr)
	}
	g.l("results:")
	g.l("\t.space 16")
	g.l("evalcount:")
	g.l("\t.space 1")

	heads := map[string]int64{
		"s": 2 * 1,              // sequential list head
		"h": int64(2 * perm[0]), // shuffled list head
	}

	g.l(".text")
	g.label("main")
	g.l("\tldi r1, 0") // op batch counter
	g.l("\tldi r2, %d", ops)
	g.label("repl")
	// Each batch runs every primitive on both lists, like an interpreter
	// evaluating a scripted test program. Primitives are instantiated
	// per list (as a Lisp system specializes hot paths), so each static
	// cdr-load sees one list's pointer pattern.
	for i, sfx := range []string{"s", "h"} {
		head := heads[sfx]
		g.l("\tldi r20, %d", head)
		g.l("\tjal ra, len_%s", sfx)
		g.l("\tst r21, results+%d(zero)", i*4)
		g.l("\tldi r20, %d", head)
		g.l("\tjal ra, sum_%s", sfx)
		g.l("\tst r21, results+%d(zero)", i*4+1)
		g.l("\tldi r20, %d", head)
		g.l("\tjal ra, max_%s", sfx)
		g.l("\tst r21, results+%d(zero)", i*4+2)
		g.l("\tldi r20, %d", head)
		g.l("\tldi r22, 17")
		g.l("\tjal ra, nth_%s", sfx)
		g.l("\tst r21, results+%d(zero)", i*4+3)
	}
	// Interpreter bookkeeping: eval counter in memory, stride-predictable.
	g.l("\tld r9, evalcount(zero)")
	g.l("\taddi r9, r9, 8")
	g.l("\tst r9, evalcount(zero)")
	g.l("\taddi r1, r1, 1")
	g.l("\tblt r1, r2, repl")
	g.l("\thalt")

	for _, sfx := range []string{"s", "h"} {
		// len: walk the list counting cells. The cdr loads are the
		// interesting part: stride-predictable on the sequential list,
		// unpredictable on the shuffled one.
		g.label("len_%s", sfx)
		g.l("\tldi r21, 0")
		g.label("len_%s_loop", sfx)
		g.l("\tbeq r20, zero, len_%s_done", sfx)
		g.l("\tld r20, heap+1(r20)") // cdr
		g.l("\taddi r21, r21, 1")    // count: stride
		g.l("\tjmp len_%s_loop", sfx)
		g.label("len_%s_done", sfx)
		g.l("\tjalr zero, ra")

		// sum: fold + over cars.
		g.label("sum_%s", sfx)
		g.l("\tldi r21, 0")
		g.label("sum_%s_loop", sfx)
		g.l("\tbeq r20, zero, sum_%s_done", sfx)
		g.l("\tld r10, heap(r20)")   // car: data-dependent
		g.l("\tadd r21, r21, r10")   // accumulator: data-dependent
		g.l("\tld r20, heap+1(r20)") // cdr
		g.l("\tjmp sum_%s_loop", sfx)
		g.label("sum_%s_done", sfx)
		g.l("\tjalr zero, ra")

		// max: fold max over cars (branchy, data-dependent).
		g.label("max_%s", sfx)
		g.l("\tldi r21, 0")
		g.label("max_%s_loop", sfx)
		g.l("\tbeq r20, zero, max_%s_done", sfx)
		g.l("\tld r10, heap(r20)")
		g.l("\tbge r21, r10, max_%s_skip", sfx)
		g.l("\tadd r21, r10, zero")
		g.label("max_%s_skip", sfx)
		g.l("\tld r20, heap+1(r20)")
		g.l("\tjmp max_%s_loop", sfx)
		g.label("max_%s_done", sfx)
		g.l("\tjalr zero, ra")

		// nth: walk r22 cells and return that car.
		g.label("nth_%s", sfx)
		g.l("\tldi r21, 0")
		g.l("\tldi r11, 0")
		g.label("nth_%s_loop", sfx)
		g.l("\tbeq r20, zero, nth_%s_done", sfx)
		g.l("\tbge r11, r22, nth_%s_take", sfx)
		g.l("\tld r20, heap+1(r20)")
		g.l("\taddi r11, r11, 1")
		g.l("\tjmp nth_%s_loop", sfx)
		g.label("nth_%s_take", sfx)
		g.l("\tld r21, heap(r20)")
		g.label("nth_%s_done", sfx)
		g.l("\tjalr zero, ra")
	}

	return g.String()
}
